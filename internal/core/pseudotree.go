package core

import "kpj/internal/graph"

// VertexID identifies a vertex of a PseudoTree. The paper distinguishes
// pseudo-tree *vertices* from graph *nodes* because the same graph node may
// appear at several tree positions (Section 3).
type VertexID = int32

// PseudoTree is the trie of already-output paths (paper Section 3). Every
// vertex doubles as a subspace of the best-first paradigm (Section 4):
// vertex u represents the subspace ⟨P_{root,u}, X_u⟩ where P_{root,u} is
// the tree path from the root to u and X_u is exactly the set of u's tree
// child edges — the edges consumed by previously output paths. This
// identification means no explicit excluded-edge sets are stored.
type PseudoTree struct {
	node   []graph.NodeID   // vertex -> space node
	parent []VertexID       // vertex -> parent vertex (-1 at root)
	plen   []graph.Weight   // vertex -> length of the root→vertex prefix
	kids   [][]graph.NodeID // vertex -> space nodes of its tree children (X_u)
}

// NewPseudoTree returns a tree holding only the root vertex (vertex 0) for
// the given space root node — the paper's PT_0.
func NewPseudoTree(root graph.NodeID) *PseudoTree {
	return &PseudoTree{
		node:   []graph.NodeID{root},
		parent: []VertexID{-1},
		plen:   []graph.Weight{0},
		kids:   [][]graph.NodeID{nil},
	}
}

// Len returns the number of vertices.
func (t *PseudoTree) Len() int { return len(t.node) }

// Node returns the space node of vertex u.
func (t *PseudoTree) Node(u VertexID) graph.NodeID { return t.node[u] }

// PrefixLen returns the length of the root→u tree path.
func (t *PseudoTree) PrefixLen(u VertexID) graph.Weight { return t.plen[u] }

// Parent returns u's parent vertex, -1 for the root.
func (t *PseudoTree) Parent(u VertexID) VertexID { return t.parent[u] }

// Excluded returns X_u: the space nodes reached by u's tree child edges,
// i.e. the first hops banned in u's subspace. The slice must not be
// modified and is invalidated by InsertSuffix.
func (t *PseudoTree) Excluded(u VertexID) []graph.NodeID { return t.kids[u] }

// PrefixNodes calls visit for every space node on the root→u tree path,
// from u back to the root (u itself included).
func (t *PseudoTree) PrefixNodes(u VertexID, visit func(graph.NodeID)) {
	for v := u; v >= 0; v = t.parent[v] {
		visit(t.node[v])
	}
}

// PrefixPath returns the root→u node sequence in forward order.
func (t *PseudoTree) PrefixPath(u VertexID) []graph.NodeID {
	var rev []graph.NodeID
	t.PrefixNodes(u, func(v graph.NodeID) { rev = append(rev, v) })
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// InsertSuffix records an output path that deviates from the tree at
// vertex d: suffix is the node sequence after d's node (so the full path is
// PrefixPath(d) + suffix), and suffixLens[i] is the length of the full path
// up to and including suffix[i]. It creates one new vertex per suffix node,
// linking d→suffix[0]→…, and returns the new vertex ids in order. This is
// the pseudo-tree update of the paper's Alg. 1 line 5 / Alg. 2 line 8.
func (t *PseudoTree) InsertSuffix(d VertexID, suffix []graph.NodeID, suffixLens []graph.Weight) []VertexID {
	if len(suffix) != len(suffixLens) {
		panic("core: suffix/lengths size mismatch")
	}
	created := make([]VertexID, len(suffix))
	prev := d
	for i, nd := range suffix {
		u := VertexID(len(t.node))
		t.node = append(t.node, nd)
		t.parent = append(t.parent, prev)
		t.plen = append(t.plen, suffixLens[i])
		t.kids = append(t.kids, nil)
		t.kids[prev] = append(t.kids[prev], nd)
		created[i] = u
		prev = u
	}
	return created
}
