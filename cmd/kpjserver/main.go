// Command kpjserver serves KPJ / KSP / GKPJ queries over HTTP for a graph
// on disk, with an optional prebuilt landmark index.
//
// Usage:
//
//	kpjserver -graph sj.gr -pois sj.pois -index sj.idx -addr :8080 \
//	          -timeout 2s -budget 5000000 -maxinflight 64
//	kpjserver -flat sj.kpjflat -mmap -addr :8080
//
// -flat loads a graph+categories+index bundle written by
// kpjindex -format=flat; with -mmap the file is mapped instead of read,
// so startup is O(1) and pages fault in on demand (Linux; elsewhere -mmap
// silently falls back to a verified read).
//
// Endpoints (see internal/server):
//
//	GET  /healthz
//	GET  /categories
//	GET  /query?source=42&category=T2&k=5[&alg=IterBoundI][&alpha=1.1][&budget=100000][&stats=1]
//	POST /batch   with a JSON array of {sources|sourceCategory, targets|category, k}
//	POST /update  with a JSON delta {setWeights, inserts, deletes, addPOIs, removePOIs}
//
// Queries that exceed -timeout or -budget return the paths found so far
// with "truncated": true; requests beyond -maxinflight are shed with 503.
// SIGINT/SIGTERM flip /readyz to 503, shed late arrivals, and drain
// in-flight requests for up to -draintimeout before exiting. With -index,
// SIGHUP re-reads the index file and atomically swaps it in (a failed
// reload logs the error and keeps serving the old index). -breaker N
// arms a per-algorithm circuit breaker: N consecutive internal failures
// switch that algorithm to a degraded serial profile instead of a run of
// 500s; -breakerprobes clean degraded queries switch it back.
//
// POST /update applies live graph changes — edge weights, segment
// insertions/deletions, POI membership — and atomically publishes a new
// serving epoch (visible in /healthz and in every query response). The
// landmark index is repaired incrementally; only the bound-table cache
// entries the delta touched are invalidated. A failed update keeps the
// old epoch serving. Updates share the -breaker setting via a dedicated
// update breaker.
//
// -wal DIR makes accepted updates durable: each delta is appended to a
// CRC-framed log and fsynced before its epoch is published, the serving
// state is checkpointed (and the log truncated) every -checkpoint-every
// epochs, and startup recovers from the newest checkpoint plus log
// replay — /readyz answers 503 "recovering" until the recovered chain's
// fingerprints verify against the durably recorded ones. Update bodies
// above -maxupdatebytes are shed with a typed 413; every query and
// update response carries X-Kpj-Epoch.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"kpj"
	"kpj/internal/server"
	"kpj/internal/wal"
)

func main() {
	graphPath := flag.String("graph", "", "DIMACS .gr file (required unless -flat is given)")
	flatPath := flag.String("flat", "", "flat graph+index file from kpjindex -format=flat (replaces -graph/-pois/-index)")
	useMmap := flag.Bool("mmap", false, "with -flat, mmap the file instead of reading it: O(1) startup, pages load on demand")
	poisPath := flag.String("pois", "", "POI category file")
	indexPath := flag.String("index", "", "prebuilt index file from kpjindex")
	landmarks := flag.Int("landmarks", 0, "build an index with this many landmarks when no -index is given")
	seed := flag.Int64("seed", 1, "landmark selection seed")
	addr := flag.String("addr", ":8080", "listen address")
	maxK := flag.Int("maxk", 1000, "per-request k limit")
	timeout := flag.Duration("timeout", 0, "per-request deadline for /query and /batch (0 = none)")
	budget := flag.Int64("budget", 0, "per-query work cap in heap pops + edge relaxations (0 = unlimited)")
	maxInFlight := flag.Int("maxinflight", 0, "max concurrently executing queries before shedding with 503 (0 = unlimited)")
	parallelism := flag.Int("parallelism", 1, "worker goroutines per query's subspace searches (<= 1 sequential; identical results)")
	cacheSize := flag.Int("cachesize", 0, "cross-request bound-table cache entries (0 = default 128, negative disables)")
	drain := flag.Duration("draintimeout", 10*time.Second, "bound on the graceful-shutdown drain window: in-flight queries get this long to finish after SIGINT/SIGTERM while late arrivals are shed with 503")
	flag.DurationVar(drain, "drain", 10*time.Second, "deprecated alias for -draintimeout")
	metrics := flag.Bool("metrics", false, "expose GET /metrics (Prometheus) and /debug/vars, and collect engine counters")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under GET /debug/pprof/")
	breaker := flag.Int("breaker", 0, "consecutive internal failures per algorithm before degrading it to serial cache-bypassed execution (0 = disabled)")
	breakerProbes := flag.Int("breakerprobes", 2, "consecutive clean degraded queries before leaving degraded mode")
	walDir := flag.String("wal", "", "write-ahead log directory: POST /update deltas are fsynced here before they are served, and startup recovers the chain from the newest checkpoint plus log replay")
	checkpointEvery := flag.Int("checkpoint-every", 64, "with -wal, snapshot the serving state and truncate the log every N epochs (0 = never)")
	maxUpdateBytes := flag.Int64("maxupdatebytes", 16<<20, "POST /update body cap in bytes; oversized deltas get 413")
	flag.Parse()

	if err := run(*graphPath, *flatPath, *useMmap, *poisPath, *indexPath, *landmarks, *seed, *addr, *maxK,
		*timeout, *budget, *maxInFlight, *parallelism, *cacheSize, *drain, *metrics, *pprofOn,
		*breaker, *breakerProbes, *walDir, *checkpointEvery, *maxUpdateBytes); err != nil {
		fmt.Fprintf(os.Stderr, "kpjserver: %v\n", err)
		os.Exit(1)
	}
}

func run(graphPath, flatPath string, useMmap bool, poisPath, indexPath string, landmarks int, seed int64, addr string, maxK int,
	timeout time.Duration, budget int64, maxInFlight, parallelism, cacheSize int, drain time.Duration,
	metrics, pprofOn bool, breakerThreshold, breakerProbes int,
	walDir string, checkpointEvery int, maxUpdateBytes int64) error {
	var g *kpj.Graph
	var ix *kpj.Index
	switch {
	case flatPath != "":
		if graphPath != "" || poisPath != "" || indexPath != "" {
			return fmt.Errorf("-flat replaces -graph/-pois/-index; do not combine them")
		}
		start := time.Now()
		fg, fix, closer, err := kpj.OpenFlat(flatPath, useMmap)
		if err != nil {
			return err
		}
		defer closer.Close()
		g, ix = fg, fix
		mode := "read"
		if useMmap {
			mode = "mmap"
		}
		count := 0
		if ix != nil {
			count = ix.Count()
		}
		fmt.Printf("loaded flat file %s (%s) with %d-landmark index in %v\n",
			flatPath, mode, count, time.Since(start).Round(time.Millisecond))
	case graphPath != "":
		gf, err := os.Open(graphPath)
		if err != nil {
			return err
		}
		defer gf.Close()
		if g, err = kpj.ReadGraph(gf); err != nil {
			return err
		}
		if poisPath != "" {
			pf, err := os.Open(poisPath)
			if err != nil {
				return err
			}
			defer pf.Close()
			if err := g.ReadCategories(pf); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("-graph or -flat is required")
	}
	if useMmap && flatPath == "" {
		return fmt.Errorf("-mmap requires -flat")
	}

	switch {
	case ix != nil:
		// Came embedded in the flat file.
	case indexPath != "":
		f, err := os.Open(indexPath)
		if err != nil {
			return err
		}
		defer f.Close()
		var err2 error
		if ix, err2 = kpj.LoadIndex(f, g); err2 != nil {
			return err2
		}
		fmt.Printf("loaded %d-landmark index from %s\n", ix.Count(), indexPath)
	case landmarks > 0:
		start := time.Now()
		var err error
		if ix, err = kpj.BuildIndex(g, landmarks, seed); err != nil {
			return err
		}
		fmt.Printf("built %d-landmark index in %v\n", ix.Count(), time.Since(start).Round(time.Millisecond))
	}

	opts := []server.Option{
		server.WithMaxK(maxK),
		server.WithTimeout(timeout),
		server.WithBudget(budget),
		server.WithMaxInFlight(maxInFlight),
		server.WithParallelism(parallelism),
		server.WithBoundsCacheSize(cacheSize),
		server.WithMaxUpdateBytes(maxUpdateBytes),
	}

	// Durability: open the WAL before the server exists. When a checkpoint
	// is present the serving state starts from it — the seed files only
	// anchor epoch 0 of a chain the checkpoint has already advanced past.
	var wlog *wal.Log
	var rec *wal.Recovery
	if walDir != "" {
		var err error
		wlog, rec, err = wal.Open(walDir)
		if err != nil {
			return fmt.Errorf("open wal: %w", err)
		}
		defer wlog.Close()
		if rec.CheckpointPath != "" {
			cg, cix, err := readCheckpoint(rec.CheckpointPath)
			if err != nil {
				return fmt.Errorf("load checkpoint: %w", err)
			}
			g, ix = cg, cix
			fmt.Printf("loaded checkpoint %s (epoch %d)\n", rec.CheckpointPath, rec.CheckpointEpoch)
		}
		opts = append(opts, server.WithWAL(wlog, checkpointEvery))
		fmt.Printf("wal %s: %d log records to replay (%d torn bytes dropped)\n",
			walDir, len(rec.Records), rec.TruncatedBytes)
	}
	if metrics {
		reg := kpj.NewMetricsRegistry()
		kpj.EnableMetrics(reg)
		opts = append(opts, server.WithMetrics(reg))
		fmt.Println("metrics on /metrics and /debug/vars")
	}
	if pprofOn {
		opts = append(opts, server.WithPprof())
		fmt.Println("profiling on /debug/pprof/")
	}
	if breakerThreshold > 0 {
		opts = append(opts, server.WithBreaker(breakerThreshold, breakerProbes))
		fmt.Printf("circuit breaker armed: %d failures open, %d probes close\n", breakerThreshold, breakerProbes)
	}
	app := server.New(g, ix, opts...)
	srv := &http.Server{
		Addr:              addr,
		Handler:           app,
		ReadHeaderTimeout: 5 * time.Second,
	}
	fmt.Printf("serving %d nodes / %d edges (categories %v) on %s\n",
		g.NumNodes(), g.NumEdges(), g.Categories(), addr)

	// Index hot-reload: SIGHUP re-reads -index and swaps it in atomically;
	// a reload that fails for any reason keeps the old index serving.
	if indexPath != "" {
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go watchReload(app, indexPath, hup, func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		})
	}

	// Graceful shutdown: SIGINT/SIGTERM stop accepting connections and
	// drain in-flight requests (whose query contexts end when the drain
	// window closes and the connections are forcibly dropped).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	if wlog != nil {
		// Replay the log suffix with the listener already up: /readyz
		// answers 503 "recovering (i/n records)" while this runs and flips
		// ready only once the recovered chain's fingerprints have been
		// verified against the durably recorded ones. A replica that cannot
		// prove its chain must not serve: recovery failure is fatal.
		if err := app.Recover(rec); err != nil {
			return fmt.Errorf("wal recovery: %w", err)
		}
		fmt.Printf("recovered to epoch %d\n", app.Epoch())
	}
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		stop() // restore default signal behavior: a second ^C kills immediately
		fmt.Printf("shutting down (draining up to %v)...\n", drain)
		if err := drainAndShutdown(app, srv, drain); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		return nil
	}
}

// readCheckpoint loads a WAL checkpoint (flat format, fully verified)
// as the serving state recovery starts from.
func readCheckpoint(path string) (*kpj.Graph, *kpj.Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return kpj.ReadFlat(f)
}

// drainAndShutdown bounds graceful shutdown by -draintimeout: readiness
// flips off first (so /readyz turns 503 and routers stop sending traffic,
// and late arrivals on kept-alive connections are shed with 503), then
// the listener closes and in-flight queries get the remainder of the
// window to finish before their connections are dropped.
func drainAndShutdown(app *server.Server, srv *http.Server, timeout time.Duration) error {
	app.StartDraining()
	sctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return srv.Shutdown(sctx)
}

// watchReload hot-reloads the index from path each time a signal (SIGHUP
// in production) arrives on ch; it returns when ch is closed. Factored
// out of run so the reload behavior is testable without sending signals
// to the test process.
func watchReload(app *server.Server, path string, ch <-chan os.Signal, logf func(string, ...any)) {
	for range ch {
		if err := app.ReloadIndex(path); err != nil {
			logf("index reload failed (keeping current index): %v", err)
			continue
		}
		logf("index reloaded from %s", path)
	}
}
