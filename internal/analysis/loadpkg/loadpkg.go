// Package loadpkg loads type-checked packages for the kpjlint analyzers
// without depending on golang.org/x/tools/go/packages: it shells out to
// `go list -export -deps -json` for package metadata and compiler export
// data (produced into the build cache, so this works offline), parses
// the target packages' sources with the stdlib parser, and type-checks
// them with the stdlib gc importer reading that export data.
package loadpkg

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Meta is the subset of `go list -json` output the driver needs.
type Meta struct {
	ImportPath string
	Dir        string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Imports    []string
	Export     string
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// InModule reports whether the package belongs to the module under
// analysis (facts are derived only for these; see the analysis package).
func (m *Meta) InModule() bool { return m.Module != nil && !m.Standard }

// List runs `go list -export -deps -json` in dir (the module root; ""
// means the current directory) on the given patterns and returns the
// decoded package stream, dependencies included, in dependency-first
// order (go list -deps emits a package after everything it imports).
func List(dir string, patterns ...string) ([]*Meta, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json=ImportPath,Dir,Standard,DepOnly,GoFiles,Imports,Export,Module,Error", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("loadpkg: go list %v: %w\n%s", patterns, err, stderr.Bytes())
	}
	var pkgs []*Meta
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		m := new(Meta)
		if err := dec.Decode(m); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("loadpkg: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, m)
	}
	return pkgs, nil
}

// ExportMap extracts importPath → export-data file for every listed
// package that has one (the unsafe pseudo-package never does).
func ExportMap(pkgs []*Meta) map[string]string {
	m := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			m[p.ImportPath] = p.Export
		}
	}
	return m
}

// Importer returns a types.Importer resolving import paths through the
// export-data files in exports.
func Importer(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("loadpkg: no export data for %q", path)
		}
		return os.Open(file)
	})
}

// A Package bundles one type-checked package's syntax and types.
type Package struct {
	Meta  *Meta
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// NewInfo allocates the types.Info maps the analyzers rely on.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// Check parses and type-checks the named files as package path, using
// imp to resolve imports.
func Check(fset *token.FileSet, path string, filenames []string, imp types.Importer) ([]*ast.File, *types.Package, *types.Info, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	conf := &types.Config{Importer: imp}
	info := NewInfo()
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, nil, err
	}
	return files, pkg, info, nil
}

// A Loader type-checks packages from one `go list -deps` run on demand,
// sharing a FileSet and export-data importer across packages so a
// driver can walk the module-internal dependency closure in dependency
// order, type-checking only the packages whose facts aren't cached.
type Loader struct {
	// Fset is shared by every package the loader checks.
	Fset *token.FileSet
	// Metas lists the closure in dependency-first order (a package
	// appears after everything it imports), targets and deps alike.
	Metas []*Meta

	imp types.Importer
}

// NewLoader lists patterns (with dependencies) in dir and prepares the
// shared type-checking state. Listing errors on target packages are
// fatal; broken DepOnly packages outside the requested patterns are
// tolerated, matching `go vet`.
func NewLoader(dir string, patterns ...string) (*Loader, error) {
	metas, err := List(dir, patterns...)
	if err != nil {
		return nil, err
	}
	for _, m := range metas {
		if m.Error != nil && !m.DepOnly {
			return nil, fmt.Errorf("loadpkg: %s: %s", m.ImportPath, m.Error.Err)
		}
	}
	fset := token.NewFileSet()
	return &Loader{Fset: fset, Metas: metas, imp: Importer(fset, ExportMap(metas))}, nil
}

// Load parses and type-checks one listed package.
func (l *Loader) Load(m *Meta) (*Package, error) {
	filenames := make([]string, len(m.GoFiles))
	for i, f := range m.GoFiles {
		filenames[i] = filepath.Join(m.Dir, f)
	}
	files, pkg, info, err := Check(l.Fset, m.ImportPath, filenames, l.imp)
	if err != nil {
		return nil, fmt.Errorf("loadpkg: type-checking %s: %w", m.ImportPath, err)
	}
	return &Package{Meta: m, Fset: l.Fset, Files: files, Pkg: pkg, Info: info}, nil
}

// LoadTargets loads every non-DepOnly, non-standard package matched by
// patterns (relative to dir) as fully type-checked Packages. Packages
// with no buildable Go files are skipped.
func LoadTargets(dir string, patterns ...string) ([]*Package, error) {
	l, err := NewLoader(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, m := range l.Metas {
		if m.DepOnly || m.Standard || len(m.GoFiles) == 0 {
			continue
		}
		p, err := l.Load(m)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}
