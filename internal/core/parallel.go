package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"kpj/internal/fault"
)

// ErrWorkerPanic reports that a worker goroutine's task panicked. The
// pool recovers the panic and injects this into the worker's Bound, so
// the query degrades into the standard truncation contract (the paths
// emitted before the panic are a valid prefix) instead of killing the
// process and deadlocking the round barrier.
var ErrWorkerPanic = errors.New("core: worker panicked")

// WorkspacePool supplies per-worker scratch workspaces for intra-query
// parallelism. Get must return a workspace with Fits(n); Put returns one
// for reuse. Implementations must be safe for concurrent use. The root
// package backs this with a sync.Pool on each Graph so worker workspaces
// are shared with the single-query hot path.
type WorkspacePool interface {
	Get(n int) *Workspace
	Put(ws *Workspace)
}

// Pool fans the independent computations of one query — the subspace
// searches of an IterBound round, CompLB calls at division time, the
// deviation algorithms' candidate resolutions — across a fixed set of
// worker goroutines. Each worker owns a Workspace (with its share of the
// query's Bound installed) and a private Stats, so the searches themselves
// run without any synchronization; Close merges the stats and returns the
// workspaces.
//
// A nil *Pool is valid and means "sequential": Workers reports 0 and Run
// and Close are no-ops, so the engine can treat Parallelism=1 as the
// degenerate case of the same code path.
type Pool struct {
	slots  []poolSlot
	rounds chan poolRound
	src    WorkspacePool
	stats  *Stats
}

type poolSlot struct {
	ws *Workspace
	st Stats
}

// poolRound is one barrier of tasks: workers claim task indexes from next
// until m is exhausted. Every copy sent on the rounds channel accounts for
// exactly one wg.Done, whichever worker consumes it.
type poolRound struct {
	m    int
	next *atomic.Int64
	f    func(task, slot int)
	wg   *sync.WaitGroup
	// share is the even per-worker task share for this round (⌈m/n⌉ over
	// the n workers dispatched); tasks claimed beyond it count as steals.
	share int
}

// NewPool materializes the intra-query worker pool described by the
// options: nil when opt.Parallelism <= 1 (the sequential case). Workspaces
// come from opt.Workspaces when set (falling back to fresh allocation) and
// each receives a share of the query's Bound, so budget and cancellation
// hold across all workers. Call after Prepare (which materializes the
// Bound) and Close when the query is done.
//
//kpjlint:alloc(pool construction, once per query: worker slots, the round channel, and worker goroutines)
func (opt *Options) NewPool(n int) *Pool {
	if opt.Parallelism <= 1 {
		return nil
	}
	p := &Pool{
		slots:  make([]poolSlot, opt.Parallelism),
		rounds: make(chan poolRound),
		src:    opt.Workspaces,
		stats:  opt.Stats,
	}
	bounds := opt.bound.Share(opt.Parallelism)
	for i := range p.slots {
		var ws *Workspace
		if p.src != nil {
			ws = p.src.Get(n)
		}
		if ws == nil || !ws.Fits(n) {
			ws = NewWorkspace(n)
		}
		ws.bound = bounds[i]
		// Worker SearchResults live in the worker's arenas; rewinding them
		// here invalidates only results of the workspace's previous query.
		ws.beginQuery(false)
		p.slots[i].ws = ws
		//kpjlint:deterministic this IS core.Pool: workers only run tasks
		// whose results are merged in task order, so scheduling never
		// reaches the output.
		go p.worker(i)
	}
	return p
}

// Workers returns the number of worker slots; 0 for the nil (sequential)
// pool.
func (p *Pool) Workers() int {
	if p == nil {
		return 0
	}
	return len(p.slots)
}

// Run executes f for every task index in [0, m) across the workers and
// returns when all are done. f receives the worker's private Workspace and
// Stats; it must not touch shared mutable state. Run must not be called
// concurrently with itself or Close.
//
//kpjlint:alloc(per-round fan-out: one closure and WaitGroup handoff per round on the parallel path)
func (p *Pool) Run(m int, f func(task int, ws *Workspace, st *Stats)) {
	if p == nil || m == 0 {
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	r := poolRound{
		m:    m,
		next: &next,
		wg:   &wg,
		f: func(task, slot int) {
			s := &p.slots[slot]
			f(task, s.ws, &s.st)
		},
	}
	n := len(p.slots)
	if m < n {
		n = m
	}
	r.share = (m + n - 1) / n
	if em := Metrics(); em != nil {
		em.PoolRounds.Inc()
		em.PoolTasks.Add(int64(m))
	}
	wg.Add(n)
	for i := 0; i < n; i++ {
		p.rounds <- r
	}
	wg.Wait()
}

//kpjlint:alloc(round bookkeeping on the worker goroutine; WaitGroup signalling only)
func (p *Pool) worker(slot int) {
	for r := range p.rounds {
		claimed := 0
		for {
			i := int(r.next.Add(1)) - 1
			if i >= r.m {
				break
			}
			p.runTask(r, i, slot)
			claimed++
		}
		// A fast worker that claimed past its even share absorbed imbalance
		// left by slower peers — the "steal" signal for pool tuning.
		if em := Metrics(); em != nil && claimed > r.share {
			em.PoolSteals.Add(int64(claimed - r.share))
		}
		r.wg.Done()
	}
}

// runTask executes one claimed task behind panic recovery and the
// pool.worker fault point. A recovered panic (organic or injected)
// becomes an ErrWorkerPanic injection into the worker's bound: the
// round still completes its barrier, and the caller must consult
// Bound.Err before trusting the round's outputs, since a panicked (or
// fault-skipped) task leaves its slot of the result unset. With no
// bound to carry the error the panic is re-raised — silently swallowing
// it would corrupt results, which is worse than the crash.
//
//kpjlint:alloc(panic-recovery error construction on the failure path)
func (p *Pool) runTask(r poolRound, i, slot int) {
	b := p.slots[slot].ws.bound
	defer func() {
		if rec := recover(); rec != nil {
			if b == nil {
				panic(rec)
			}
			b.Inject(fmt.Errorf("%w: %v", ErrWorkerPanic, rec))
		}
	}()
	if ferr := fault.Hit(fault.PoolWorker); ferr != nil {
		b.Inject(ferr)
	}
	r.f(i, slot)
}

// Close stops the workers, merges their private stats into the query's
// Stats, returns unspent budget allowances to the shared pool, and hands
// the workspaces back to the WorkspacePool. Safe on a nil pool.
func (p *Pool) Close() {
	if p == nil {
		return
	}
	close(p.rounds)
	for i := range p.slots {
		s := &p.slots[i]
		s.ws.bound.release()
		s.ws.bound = nil
		if p.stats != nil {
			p.stats.Add(s.st)
		}
		if p.src != nil {
			p.src.Put(s.ws)
		}
	}
}
