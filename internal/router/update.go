package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"

	"kpj/internal/fault"
)

// This file is the router's replicated-update layer. POST /update on the
// router fans one delta to every routable replica, fenced on the fleet's
// current (epoch, fingerprint) so a replica can only apply the delta to
// exactly the generation the fleet agrees on. Replicas that fail, shed,
// conflict, or produce a divergent result are marked down on the spot
// and brought back through resync: replay the retained delta tail when
// it still covers their epoch, otherwise transfer a full snapshot from
// a caught-up replica. A downed replica is readmitted only when a probe
// observes it at the fleet's exact (epoch, fingerprint) — a replica can
// never serve a stale epoch after readmission.
//
// The fleet state itself is adopted monotonically: probes and update
// acks only ever advance it (ties keep the incumbent), so a restarted
// router re-learns the fleet epoch from its replicas and a stale applier
// can never drag the fleet backwards.

// fleetState is the router's view of the generation the fleet agrees
// on. fp is the index fingerprint (0 when the fleet runs unindexed).
type fleetState struct {
	epoch uint64
	fp    uint64
}

func (f fleetState) String() string {
	return fmt.Sprintf("%d/%016x", f.epoch, f.fp)
}

// fleetSnapshot returns the current fleet state (zero before the first
// probe or update has established one).
func (rt *Router) fleetSnapshot() fleetState {
	if f := rt.fleet.Load(); f != nil {
		return *f
	}
	return fleetState{}
}

// adoptFleet advances the fleet state to (epoch, fp) if that is ahead of
// the current view. Ties keep the incumbent: when two replicas disagree
// at the same epoch, the first one adopted defines the fleet and the
// other is caught as diverged by probe gating.
func (rt *Router) adoptFleet(epoch, fp uint64) {
	for {
		cur := rt.fleet.Load()
		if cur != nil && epoch <= cur.epoch {
			return
		}
		if rt.fleet.CompareAndSwap(cur, &fleetState{epoch: epoch, fp: fp}) {
			return
		}
	}
}

// tailEntry is one accepted delta retained for log-suffix catch-up: the
// fence it applied under, the generation it produced, and the raw body.
type tailEntry struct {
	from fleetState
	to   fleetState
	body []byte
}

// deltaTail is a bounded ring of the most recent accepted deltas.
// Entries are appended in fleet order (under the router's update mutex),
// so the retained window is always one contiguous chain suffix.
type deltaTail struct {
	mu      sync.Mutex
	cap     int
	entries []tailEntry
}

func (t *deltaTail) append(e tailEntry) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.entries = append(t.entries, e)
	if len(t.entries) > t.cap {
		t.entries = t.entries[len(t.entries)-t.cap:]
	}
}

// suffix returns the chain of retained deltas leading from (epoch, fp)
// to the newest entry, or ok=false when the tail no longer reaches that
// far back (the replica must take a snapshot instead). An empty slice
// with ok=true means the state is already current.
func (t *deltaTail) suffix(epoch, fp uint64) ([]tailEntry, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n := len(t.entries); n > 0 && t.entries[n-1].to == (fleetState{epoch: epoch, fp: fp}) {
		return nil, true
	}
	for i, e := range t.entries {
		if e.from.epoch == epoch && e.from.fp == fp {
			out := make([]tailEntry, len(t.entries)-i)
			copy(out, t.entries[i:])
			return out, true
		}
	}
	return nil, false
}

// updateOutcome is one replica's verdict on a fanned-out delta.
type updateOutcome struct {
	rp       *replica
	status   int
	epoch    uint64 // replica's generation from the response headers
	fp       uint64
	applied  bool
	conflict bool
	err      error
	body     []byte
}

func (rt *Router) handleUpdate(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.cfg.MaxUpdateBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeTypedError(w, http.StatusRequestEntityTooLarge, kindBadRequest,
				"delta exceeds %d bytes", rt.cfg.MaxUpdateBytes)
			return
		}
		writeTypedError(w, http.StatusBadRequest, kindBadRequest, "read body: %v", err)
		return
	}
	if len(bytes.TrimSpace(body)) == 0 {
		writeTypedError(w, http.StatusBadRequest, kindBadRequest, "empty body")
		return
	}

	// One update at a time: the fence each fan-out carries is the fleet
	// state the previous fan-out established, so updates extend one chain.
	rt.updateMu.Lock()
	defer rt.updateMu.Unlock()

	fence := rt.fleetSnapshot()
	topo := rt.topo.Load()
	var targets []*replica
	for _, rp := range topo.reps {
		if rp.State() != StateDown {
			targets = append(targets, rp)
		}
	}
	if len(targets) == 0 {
		writeTypedError(w, http.StatusServiceUnavailable, kindUnavailable, "no routable replicas")
		rt.met.observeUpdateFan(false)
		return
	}

	results := make(chan updateOutcome, len(targets))
	for _, rp := range targets {
		rp := rp
		go func() {
			defer func() {
				if p := recover(); p != nil {
					results <- updateOutcome{rp: rp, err: fmt.Errorf("update panic: %v", p)}
				}
			}()
			results <- rt.fanoutOne(r.Context(), rp, body, fence)
		}()
	}
	outs := make([]updateOutcome, 0, len(targets))
	for range targets {
		outs = append(outs, <-results)
	}

	// The first applier defines the canonical successor generation; every
	// replica applied the same delta under the same fence, so a different
	// answer is divergence, not a race.
	var canonical *updateOutcome
	for i := range outs {
		if outs[i].applied {
			canonical = &outs[i]
			break
		}
	}
	if canonical == nil {
		// Nothing applied. If a conflict shows the fleet is ahead of our
		// fence (e.g. this router restarted with stale state), adopt it and
		// tell the caller to retry against the new generation.
		for _, o := range outs {
			if o.conflict && o.epoch > fence.epoch {
				rt.adoptFleet(o.epoch, o.fp)
				w.Header().Set("X-Kpj-Epoch", strconv.FormatUint(o.epoch, 10))
				writeTypedError(w, http.StatusConflict, kindEpochConflict,
					"fleet advanced to epoch %d; retry", o.epoch)
				rt.met.observeUpdateFan(false)
				return
			}
		}
		last := outs[len(outs)-1]
		writeTypedError(w, http.StatusServiceUnavailable, kindUnavailable,
			"no replica applied the update: status %d err %v", last.status, last.err)
		rt.met.observeUpdateFan(false)
		return
	}
	next := fleetState{epoch: canonical.epoch, fp: canonical.fp}
	rt.adoptFleet(next.epoch, next.fp)
	rt.tail.append(tailEntry{from: fence, to: next, body: body})

	applied := make([]string, 0, len(outs))
	var resyncing []string
	for i := range outs {
		o := &outs[i]
		switch {
		case o.applied && o.epoch == next.epoch && o.fp == next.fp:
			applied = append(applied, o.rp.name)
		default:
			// Failed, conflicted, or diverged: fence the replica out of the
			// serving set immediately and bring it back through resync —
			// readmission happens only once a probe sees it at the fleet
			// generation.
			reason := fmt.Errorf("update fan-out: status %d epoch %d/%016x (fleet %s)",
				o.status, o.epoch, o.fp, next)
			if o.err != nil {
				reason = fmt.Errorf("update fan-out: status %d epoch %d/%016x (fleet %s): %w",
					o.status, o.epoch, o.fp, next, o.err)
			}
			rt.setState(o.rp, StateDown, reason)
			rt.scheduleResync(o.rp)
			resyncing = append(resyncing, o.rp.name)
		}
	}

	w.Header().Set("X-Kpj-Epoch", strconv.FormatUint(next.epoch, 10))
	w.Header().Set("X-Kpj-Replica", canonical.rp.name)
	w.Header().Set("Content-Type", "application/json")
	resp := map[string]any{"epoch": next.epoch, "applied": applied}
	if next.fp != 0 {
		resp["fingerprint"] = fmt.Sprintf("%016x", next.fp)
	}
	if len(resyncing) > 0 {
		resp["resyncing"] = resyncing
	}
	w.WriteHeader(http.StatusOK)
	_ = json.NewEncoder(w).Encode(resp)
	rt.met.observeUpdateFan(true)
}

// fanoutOne delivers one delta to one replica, retrying transient
// failures (connection errors, 5xx, sheds) within the shared retry
// token budget. Deliberate answers — applied, conflict, client error —
// are final.
func (rt *Router) fanoutOne(ctx context.Context, rp *replica, body []byte, fence fleetState) updateOutcome {
	var out updateOutcome
	for attempt := 0; ; attempt++ {
		out = rt.postDelta(ctx, rp, body, fence)
		if out.err == nil && out.status < 500 {
			return out
		}
		if ctx.Err() != nil || attempt+1 >= rt.cfg.MaxAttempts || !rt.takeToken() {
			return out
		}
		rt.met.observeFailover()
	}
}

// postDelta POSTs one fenced update to rp and classifies the answer.
func (rt *Router) postDelta(ctx context.Context, rp *replica, body []byte, fence fleetState) updateOutcome {
	out := updateOutcome{rp: rp}
	if err := fault.Hit(fault.RouterProxy); err != nil {
		out.err = err
		return out
	}
	if rt.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, rt.cfg.RequestTimeout)
		defer cancel()
	}
	u := *rp.base
	u.Path = "/update"
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u.String(), bytes.NewReader(body))
	if err != nil {
		out.err = err
		return out
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Kpj-Expect-Epoch", strconv.FormatUint(fence.epoch, 10))
	if fence.fp != 0 {
		req.Header.Set("X-Kpj-Expect-Fingerprint", fmt.Sprintf("%016x", fence.fp))
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		out.err = err
		return out
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		out.err = fmt.Errorf("read response: %w", err)
		return out
	}
	out.status, out.body = resp.StatusCode, b
	out.epoch, _ = strconv.ParseUint(resp.Header.Get("X-Kpj-Epoch"), 10, 64)
	out.fp, _ = strconv.ParseUint(resp.Header.Get("X-Kpj-Fingerprint"), 16, 64)
	out.applied = resp.StatusCode == http.StatusOK
	out.conflict = resp.StatusCode == http.StatusConflict
	return out
}

// scheduleResync starts one background resync of rp (no-op if one is
// already running). A failed attempt is retried by the probe loop: the
// replica stays down, every probe re-observes it stale and calls back
// here.
func (rt *Router) scheduleResync(rp *replica) {
	if rt.closed.Load() || !rp.resyncing.CompareAndSwap(false, true) {
		return
	}
	rt.resyncWG.Add(1)
	go func() {
		defer rt.resyncWG.Done()
		defer rp.resyncing.Store(false)
		ok := rt.resyncReplica(rt.ctx, rp)
		rt.met.observeResync(ok)
	}()
}

// resyncReplica brings a downed replica back onto the fleet chain:
// delta-tail replay when the retained window still covers its epoch,
// full snapshot transfer from a caught-up peer otherwise. It only moves
// state — readmission stays with the probe loop, which flips the
// replica up once it observes the fleet (epoch, fingerprint).
func (rt *Router) resyncReplica(ctx context.Context, rp *replica) bool {
	fleet := rt.fleetSnapshot()
	if fleet == (fleetState{}) {
		return false
	}
	have, fp, err := rt.fetchEpoch(ctx, rp)
	if err != nil {
		rt.logf("router: resync %s: cannot read state: %v", rp.name, err)
		return false
	}
	if have > fleet.epoch {
		rt.adoptFleet(have, fp)
		return true
	}
	if have == fleet.epoch && fp == fleet.fp {
		return true // already caught up; next probe readmits
	}
	if entries, ok := rt.tail.suffix(have, fp); ok {
		replayed := true
		for _, e := range entries {
			out := rt.fanoutOne(ctx, rp, e.body, e.from)
			if !out.applied || out.epoch != e.to.epoch || out.fp != e.to.fp {
				rt.logf("router: resync %s: tail replay at epoch %d failed (status %d err %v); falling back to snapshot",
					rp.name, e.to.epoch, out.status, out.err)
				replayed = false
				break
			}
		}
		if replayed {
			rt.logf("router: resync %s: replayed %d tail deltas to %s", rp.name, len(entries), fleet)
			return true
		}
	}
	return rt.snapshotResync(ctx, rp, fleet)
}

// fetchEpoch reads a replica's current (epoch, fingerprint) from
// /readyz regardless of its readiness — a recovering or draining
// replica still reports where its chain stands.
func (rt *Router) fetchEpoch(ctx context.Context, rp *replica) (epoch, fp uint64, err error) {
	pctx, cancel := context.WithTimeout(ctx, rt.cfg.ProbeTimeout)
	defer cancel()
	var body readyzBody
	if _, err := rt.getJSON(pctx, rp, "/readyz", &body); err != nil {
		return 0, 0, err
	}
	fp, _ = strconv.ParseUint(body.Fingerprint, 16, 64)
	return body.Epoch, fp, nil
}

// snapshotResync transfers a full flat snapshot from a caught-up peer
// onto rp. The peer must be at the fleet generation; the snapshot's own
// headers name what was actually shipped (it may be ahead if an update
// lands mid-transfer — still a valid chain state, adopted monotonically).
func (rt *Router) snapshotResync(ctx context.Context, rp *replica, fleet fleetState) bool {
	var source *replica
	for _, peer := range rt.topo.Load().reps {
		if peer != rp && peer.State() != StateDown &&
			peer.epoch.Load() == fleet.epoch && peer.fp.Load() == fleet.fp {
			source = peer
			break
		}
	}
	if source == nil {
		rt.logf("router: resync %s: no caught-up peer at %s to snapshot from", rp.name, fleet)
		return false
	}
	if rt.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, rt.cfg.RequestTimeout)
		defer cancel()
	}
	u := *source.base
	u.Path = "/snapshot"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u.String(), nil)
	if err != nil {
		return false
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		rt.logf("router: resync %s: snapshot from %s: %v", rp.name, source.name, err)
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		rt.logf("router: resync %s: snapshot from %s: status %d", rp.name, source.name, resp.StatusCode)
		return false
	}
	snap, err := io.ReadAll(io.LimitReader(resp.Body, 1<<30))
	if err != nil {
		rt.logf("router: resync %s: snapshot read: %v", rp.name, err)
		return false
	}
	snapEpoch := resp.Header.Get("X-Kpj-Epoch")

	u = *rp.base
	u.Path = "/resync"
	req, err = http.NewRequestWithContext(ctx, http.MethodPost, u.String(), bytes.NewReader(snap))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set("X-Kpj-Epoch", snapEpoch)
	resp2, err := rt.client.Do(req)
	if err != nil {
		rt.logf("router: resync %s: post snapshot: %v", rp.name, err)
		return false
	}
	defer resp2.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp2.Body, 1<<20))
	if resp2.StatusCode != http.StatusOK {
		rt.logf("router: resync %s: resync rejected: status %d", rp.name, resp2.StatusCode)
		return false
	}
	rt.logf("router: resync %s: snapshot transfer from %s at epoch %s complete (%d bytes)",
		rp.name, source.name, snapEpoch, len(snap))
	return true
}
