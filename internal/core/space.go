// Package core implements the paper's primary contribution: the best-first
// subspace paradigm for top-k shortest path join (Section 4) and the
// iteratively bounding approaches with partial and incremental shortest
// path trees (Section 5), plus the extensions of Section 6 (multiple source
// nodes, operation without landmarks).
//
// All algorithms run over a Space: the query-transformed graph G_Q of
// Section 3, in which a virtual target node is connected from every
// destination node with weight 0 (and, for GKPJ, a virtual source node is
// connected to every source node with weight 0). The Space is a view — the
// underlying graph is never copied per query.
package core

import (
	"fmt"

	"kpj/internal/graph"
)

// Space is the per-query search space: paths grow from Root and end at
// Goal, expanding edges in Dir over the underlying graph plus the virtual
// node adjacencies. For forward-space algorithms (DA, DA-SPT, BestFirst,
// IterBound, IterBound-SPT_P) Dir is Forward, Root is the source side and
// Goal the virtual target. IterBound-SPT_I uses the reverse space
// (Section 5.3): Dir is Backward, Root is the virtual target, and Goal is
// the source side; a Root→Goal space path read backwards is the physical
// s→V_T path.
type Space struct {
	G   *graph.Graph
	Dir graph.Direction

	Root graph.NodeID // where every enumerated path starts
	Goal graph.NodeID // where every enumerated path ends

	rootMembers []graph.NodeID // expansion of a virtual Root (weight 0)

	// goalMember is an epoch-stamped membership array over physical nodes:
	// v has a 0-edge v→Goal iff goalMember[v] == goalEpoch. Stamping lets a
	// workspace-owned array be re-seeded in O(|targets|) per query instead
	// of O(n). Nil when Goal is physical.
	goalMember []uint32
	goalEpoch  uint32
}

// Virtual node ids: the V_T-side virtual node is n, the V_S-side one n+1.
// Both ids are always reserved so that Workspace arrays have a fixed size
// N = n+2 regardless of query shape.
func (sp *Space) vtNode() graph.NodeID { return graph.NodeID(sp.G.NumNodes()) }
func (sp *Space) vsNode() graph.NodeID { return graph.NodeID(sp.G.NumNodes() + 1) }

// NumSpaceNodes returns the node-id space size (physical nodes + 2 virtual
// slots); Workspace arrays are sized by it.
func (sp *Space) NumSpaceNodes() int { return sp.G.NumNodes() + 2 }

// IsVirtual reports whether a space node id is one of the virtual slots.
func (sp *Space) IsVirtual(v graph.NodeID) bool { return int(v) >= sp.G.NumNodes() }

// NewForwardSpace builds the space used by the forward algorithms:
// paths from the source side (one physical source, or a virtual source
// covering several) to the virtual target covering targets.
func NewForwardSpace(g *graph.Graph, sources, targets []graph.NodeID) *Space {
	sp := &Space{}
	sp.initForward(g, sources, targets, make([]uint32, g.NumNodes()), 1)
	return sp
}

// initForward is NewForwardSpace into caller-owned storage: stamp is the
// goal-membership array (its entries equal to epoch mark members), so a
// workspace can recycle the array across queries with an epoch bump.
func (sp *Space) initForward(g *graph.Graph, sources, targets []graph.NodeID, stamp []uint32, epoch uint32) {
	*sp = Space{G: g, Dir: graph.Forward}
	sp.Goal = sp.vtNode()
	sp.goalMember, sp.goalEpoch = stampMembers(stamp, epoch, targets)
	if len(sources) == 1 {
		sp.Root = sources[0]
	} else {
		sp.Root = sp.vsNode()
		sp.rootMembers = sources
	}
}

// NewReverseSpace builds the space used by IterBound-SPT_I: paths from the
// virtual target (root, expanding to every target with weight 0) backwards
// to the source side.
func NewReverseSpace(g *graph.Graph, sources, targets []graph.NodeID) *Space {
	sp := &Space{}
	sp.initReverse(g, sources, targets, make([]uint32, g.NumNodes()), 1)
	return sp
}

// initReverse is NewReverseSpace into caller-owned storage; see initForward.
func (sp *Space) initReverse(g *graph.Graph, sources, targets []graph.NodeID, stamp []uint32, epoch uint32) {
	*sp = Space{G: g, Dir: graph.Backward}
	sp.Root = sp.vtNode()
	sp.rootMembers = targets
	if len(sources) == 1 {
		sp.Goal = sources[0]
	} else {
		sp.Goal = sp.vsNode()
		sp.goalMember, sp.goalEpoch = stampMembers(stamp, epoch, sources)
	}
}

func stampMembers(stamp []uint32, epoch uint32, nodes []graph.NodeID) ([]uint32, uint32) {
	for _, v := range nodes {
		stamp[v] = epoch
	}
	return stamp, epoch
}

// RootMembers returns the expansion set of a virtual root (nil when the
// root is physical). The slice must not be modified.
func (sp *Space) RootMembers() []graph.NodeID { return sp.rootMembers }

// Expand calls yield(to, w) for every outgoing space edge of v, in
// deterministic order. The goal node never expands: paths end there (a
// physical goal's further graph edges can only produce non-simple
// extensions, so they are never part of an enumerated path).
func (sp *Space) Expand(v graph.NodeID, yield func(to graph.NodeID, w graph.Weight)) {
	if v == sp.Goal {
		return
	}
	if sp.IsVirtual(v) {
		if v == sp.Root {
			for _, u := range sp.rootMembers {
				yield(u, 0) //kpjlint:alloc(yield is the search loop's non-escaping closure; the call itself allocates nothing)
			}
		}
		return
	}
	for _, e := range sp.G.Edges(sp.Dir, v) {
		yield(e.To, e.W) //kpjlint:alloc(yield is the search loop's non-escaping closure; the call itself allocates nothing)
	}
	if sp.goalMember != nil && sp.goalMember[v] == sp.goalEpoch {
		yield(sp.Goal, 0) //kpjlint:alloc(yield is the search loop's non-escaping closure; the call itself allocates nothing)
	}
}

// Path is one result path in the original graph: the physical node
// sequence from a source to a destination node and its length. A
// single-node path (source already in the destination category) has
// Length 0.
type Path struct {
	Nodes  []graph.NodeID
	Length graph.Weight
}

func (p Path) String() string {
	return fmt.Sprintf("len=%d nodes=%v", p.Length, p.Nodes)
}

// Materialize converts a space path (Root→…→Goal node sequence) into a
// physical Path: virtual endpoints are stripped and, for a reverse space,
// the order is flipped so Nodes always reads source→destination.
func (sp *Space) Materialize(spaceNodes []graph.NodeID, length graph.Weight) Path {
	return Path{
		Nodes:  sp.materializeInto(make([]graph.NodeID, 0, len(spaceNodes)), spaceNodes),
		Length: length,
	}
}

// materializeInto appends the physical node sequence of a space path to dst
// (stripping virtual nodes, flipping reverse-space order) and returns the
// extended slice. Hot paths pass arena- or scratch-backed dst.
func (sp *Space) materializeInto(dst, spaceNodes []graph.NodeID) []graph.NodeID {
	base := len(dst)
	for _, v := range spaceNodes {
		if !sp.IsVirtual(v) {
			dst = append(dst, v) //kpjlint:alloc(appends into a dst pre-sized by the caller (arena take or exact-capacity make))
		}
	}
	if sp.Dir == graph.Backward {
		seg := dst[base:]
		for i, j := 0, len(seg)-1; i < j; i, j = i+1, j-1 {
			seg[i], seg[j] = seg[j], seg[i]
		}
	}
	return dst
}
