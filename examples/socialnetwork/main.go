// Social-network forensics: the paper's introduction motivates KPJ with
// finding the accounts involved in the top-k shortest paths between two
// criminal gangs — a GKPJ query where both endpoints are categories.
//
// The program builds a synthetic small-world social graph (Watts-Strogatz
// style: a ring lattice with random rewiring; edge weights model
// interaction distance), marks two "gangs", runs a category-to-category
// join, and ranks the intermediate accounts by how many of the top paths
// they appear on — the "most suspicious" accounts.
//
//	go run ./examples/socialnetwork
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"kpj"
)

const (
	members   = 4000 // accounts
	neighbors = 4    // ring lattice degree per side
	k         = 25   // paths to inspect
)

func main() {
	rng := rand.New(rand.NewSource(11))

	// Small-world graph: ring lattice plus rewired shortcuts.
	b := kpj.NewBuilder(members)
	for v := 0; v < members; v++ {
		for d := 1; d <= neighbors; d++ {
			u := (v + d) % members
			if rng.Float64() < 0.1 { // rewire
				u = rng.Intn(members)
				if u == v {
					continue
				}
			}
			// Weight = interaction distance: close friends 1-3, weak ties 4-9.
			w := kpj.Weight(1 + rng.Int63n(3))
			if d > 2 {
				w = 4 + rng.Int63n(6)
			}
			b.AddBiEdge(kpj.NodeID(v), kpj.NodeID(u), w)
		}
	}
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// Two gangs on opposite sides of the ring.
	gangA := []kpj.NodeID{10, 11, 12, 13, 14}
	gangB := []kpj.NodeID{2000, 2001, 2002, 2003}
	if err := g.AddCategory("gangA", gangA); err != nil {
		log.Fatal(err)
	}
	if err := g.AddCategory("gangB", gangB); err != nil {
		log.Fatal(err)
	}

	ix, err := kpj.BuildIndex(g, 8, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("social graph: %d accounts, %d ties\n", g.NumNodes(), g.NumEdges())

	paths, err := g.TopKCategoryJoin("gangA", "gangB", k, &kpj.Options{Index: ix})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntop-%d shortest connection chains between the gangs:\n", len(paths))
	for i, p := range paths {
		if i < 5 || i == len(paths)-1 {
			fmt.Printf("  #%d  distance %2d  %v\n", i+1, p.Length, p.Nodes)
		} else if i == 5 {
			fmt.Println("  ...")
		}
	}

	// Rank intermediaries: accounts that appear on many of the shortest
	// inter-gang chains but belong to neither gang.
	inGang := map[kpj.NodeID]bool{}
	for _, v := range append(append([]kpj.NodeID{}, gangA...), gangB...) {
		inGang[v] = true
	}
	counts := map[kpj.NodeID]int{}
	for _, p := range paths {
		for _, v := range p.Nodes {
			if !inGang[v] {
				counts[v]++
			}
		}
	}
	type suspect struct {
		id kpj.NodeID
		n  int
	}
	suspects := make([]suspect, 0, len(counts))
	for id, n := range counts {
		suspects = append(suspects, suspect{id, n})
	}
	sort.Slice(suspects, func(i, j int) bool {
		if suspects[i].n != suspects[j].n {
			return suspects[i].n > suspects[j].n
		}
		return suspects[i].id < suspects[j].id
	})
	fmt.Println("\nmost suspicious intermediary accounts (appearances in top chains):")
	for i, s := range suspects {
		if i == 8 {
			break
		}
		fmt.Printf("  account %-5d on %d of %d chains\n", s.id, s.n, len(paths))
	}
}
