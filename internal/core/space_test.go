package core

import (
	"testing"

	"kpj/internal/graph"
	"kpj/internal/testgraphs"
)

func collectExpand(sp *Space, v graph.NodeID) map[graph.NodeID]graph.Weight {
	out := map[graph.NodeID]graph.Weight{}
	sp.Expand(v, func(to graph.NodeID, w graph.Weight) { out[to] = w })
	return out
}

func TestForwardSpaceSingleSource(t *testing.T) {
	g := testgraphs.Fig1()
	hotels, _ := g.Category(testgraphs.HotelCategory)
	sp := NewForwardSpace(g, []graph.NodeID{testgraphs.V1}, hotels)
	if sp.Root != testgraphs.V1 {
		t.Fatalf("Root = %d, want v1", sp.Root)
	}
	if !sp.IsVirtual(sp.Goal) || sp.Goal != graph.NodeID(g.NumNodes()) {
		t.Fatalf("Goal = %d, want virtual target %d", sp.Goal, g.NumNodes())
	}
	if sp.NumSpaceNodes() != g.NumNodes()+2 {
		t.Fatalf("NumSpaceNodes = %d", sp.NumSpaceNodes())
	}
	// v8 expands to its graph neighbours only.
	exp := collectExpand(sp, testgraphs.V8)
	if w, ok := exp[testgraphs.V7]; !ok || w != 3 {
		t.Fatalf("v8 expansion missing (v7,3): %v", exp)
	}
	if _, ok := exp[sp.Goal]; ok {
		t.Fatal("v8 is not a hotel but expands to goal")
	}
	// A hotel node additionally expands to the goal with weight 0.
	exp = collectExpand(sp, testgraphs.V7)
	if w, ok := exp[sp.Goal]; !ok || w != 0 {
		t.Fatalf("v7 (hotel) should expand to goal with 0: %v", exp)
	}
	// The goal never expands.
	if got := collectExpand(sp, sp.Goal); len(got) != 0 {
		t.Fatalf("goal expansion = %v, want none", got)
	}
}

func TestForwardSpaceVirtualSource(t *testing.T) {
	g := testgraphs.Fig1()
	hotels, _ := g.Category(testgraphs.HotelCategory)
	srcs := []graph.NodeID{testgraphs.V1, testgraphs.V9}
	sp := NewForwardSpace(g, srcs, hotels)
	if !sp.IsVirtual(sp.Root) {
		t.Fatal("multi-source space must have a virtual root")
	}
	exp := collectExpand(sp, sp.Root)
	if len(exp) != 2 || exp[testgraphs.V1] != 0 || exp[testgraphs.V9] != 0 {
		t.Fatalf("virtual root expansion = %v", exp)
	}
	if got := sp.RootMembers(); len(got) != 2 {
		t.Fatalf("RootMembers = %v", got)
	}
}

func TestReverseSpace(t *testing.T) {
	g := testgraphs.Fig1()
	hotels, _ := g.Category(testgraphs.HotelCategory)
	sp := NewReverseSpace(g, []graph.NodeID{testgraphs.V1}, hotels)
	if !sp.IsVirtual(sp.Root) {
		t.Fatal("reverse root must be the virtual target")
	}
	if sp.Goal != testgraphs.V1 {
		t.Fatalf("reverse goal = %d, want v1", sp.Goal)
	}
	exp := collectExpand(sp, sp.Root)
	if len(exp) != len(hotels) {
		t.Fatalf("reverse root expands to %v, want all hotels", exp)
	}
	// Physical expansion walks in-edges: v7's in-neighbours include v13.
	exp = collectExpand(sp, testgraphs.V7)
	if w, ok := exp[testgraphs.V13]; !ok || w != 10 {
		t.Fatalf("reverse expansion of v7 = %v, want v13 with 10", exp)
	}
	// The physical goal does not expand (extensions beyond it can never
	// produce simple result paths).
	if got := collectExpand(sp, sp.Goal); len(got) != 0 {
		t.Fatalf("goal expansion = %v, want none", got)
	}
}

func TestMaterializeForward(t *testing.T) {
	g := testgraphs.Fig1()
	hotels, _ := g.Category(testgraphs.HotelCategory)
	sp := NewForwardSpace(g, []graph.NodeID{testgraphs.V1}, hotels)
	p := sp.Materialize([]graph.NodeID{testgraphs.V1, testgraphs.V8, testgraphs.V7, sp.Goal}, 5)
	if p.Length != 5 || len(p.Nodes) != 3 || p.Nodes[0] != testgraphs.V1 || p.Nodes[2] != testgraphs.V7 {
		t.Fatalf("Materialize = %v", p)
	}
	if p.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestMaterializeReverse(t *testing.T) {
	g := testgraphs.Fig1()
	hotels, _ := g.Category(testgraphs.HotelCategory)
	sp := NewReverseSpace(g, []graph.NodeID{testgraphs.V1}, hotels)
	p := sp.Materialize([]graph.NodeID{sp.Root, testgraphs.V7, testgraphs.V8, testgraphs.V1}, 5)
	if len(p.Nodes) != 3 || p.Nodes[0] != testgraphs.V1 || p.Nodes[1] != testgraphs.V8 || p.Nodes[2] != testgraphs.V7 {
		t.Fatalf("reverse Materialize = %v, want v1,v8,v7", p)
	}
}

func TestPseudoTreeInsertAndExclude(t *testing.T) {
	pt := NewPseudoTree(100)
	if pt.Len() != 1 || pt.Node(0) != 100 || pt.Parent(0) != -1 || pt.PrefixLen(0) != 0 {
		t.Fatal("bad root vertex")
	}
	// Insert path 100→5→7 with cumulative lengths 2, 6. The created ids are
	// the consecutive range starting at the returned first vertex.
	first := pt.InsertSuffix(0, []graph.NodeID{5, 7}, []graph.Weight{2, 6})
	if first != 1 || pt.Len() != 3 {
		t.Fatalf("first = %d, Len = %d, want 1, 3", first, pt.Len())
	}
	if pt.Node(first) != 5 || pt.PrefixLen(first) != 2 {
		t.Fatal("first suffix vertex wrong")
	}
	if pt.Node(first+1) != 7 || pt.PrefixLen(first+1) != 6 || pt.Parent(first+1) != first {
		t.Fatal("second suffix vertex wrong")
	}
	if !pt.ExcludedHas(0, 5) || pt.ExcludedHas(0, 9) || pt.ExcludedLen(0) != 1 {
		t.Fatalf("root exclusions: has5=%v has9=%v len=%d, want [5]",
			pt.ExcludedHas(0, 5), pt.ExcludedHas(0, 9), pt.ExcludedLen(0))
	}
	// Insert a second path deviating at the root: 100→9.
	pt.InsertSuffix(0, []graph.NodeID{9}, []graph.Weight{4})
	if !pt.ExcludedHas(0, 5) || !pt.ExcludedHas(0, 9) || pt.ExcludedLen(0) != 2 {
		t.Fatalf("root exclusions len=%d, want [5 9]", pt.ExcludedLen(0))
	}
	// Prefix path of the deep vertex.
	if p := pt.PrefixPath(first + 1); len(p) != 3 || p[0] != 100 || p[1] != 5 || p[2] != 7 {
		t.Fatalf("PrefixPath = %v", p)
	}
	// AppendPrefixPath reuses the destination buffer in place.
	buf := make([]graph.NodeID, 0, 8)
	if p := pt.AppendPrefixPath(buf, first+1); len(p) != 3 || p[2] != 7 || &p[0] != &buf[:1][0] {
		t.Fatalf("AppendPrefixPath = %v (reuse=%v)", p, len(p) == 3 && &p[0] == &buf[:1][0])
	}
	// Prefix enumeration visits bottom-up.
	var seen []graph.NodeID
	pt.PrefixNodes(first+1, func(v graph.NodeID) { seen = append(seen, v) })
	if len(seen) != 3 || seen[0] != 7 || seen[2] != 100 {
		t.Fatalf("PrefixNodes order = %v", seen)
	}
	// Reset drops every vertex but keeps the root usable.
	pt.Reset(42)
	if pt.Len() != 1 || pt.Node(0) != 42 || pt.ExcludedLen(0) != 0 {
		t.Fatalf("after Reset: Len=%d Node=%d excl=%d", pt.Len(), pt.Node(0), pt.ExcludedLen(0))
	}
}

func TestPseudoTreeInsertMismatchPanics(t *testing.T) {
	pt := NewPseudoTree(0)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on suffix/lens mismatch")
		}
	}()
	pt.InsertSuffix(0, []graph.NodeID{1}, nil)
}
