package graph

import (
	"encoding/json"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"kpj/internal/fault"
)

// lineGraph builds 0 -1-> 1 -2-> 2 ... with weight i+1 on edge (i, i+1),
// plus the reverse direction at the same weights.
func lineGraph(t *testing.T, n int) *Graph {
	t.Helper()
	b := NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddBiEdge(NodeID(i), NodeID(i+1), Weight(i+1))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func edgeList(g *Graph) map[[2]NodeID]Weight {
	out := map[[2]NodeID]Weight{}
	for u := 0; u < g.NumNodes(); u++ {
		for _, e := range g.Out(NodeID(u)) {
			out[[2]NodeID{NodeID(u), e.To}] = e.W
		}
	}
	return out
}

func TestApplyEdgeMutations(t *testing.T) {
	g := lineGraph(t, 5)
	if err := g.AddCategory("poi", []NodeID{1, 3}); err != nil {
		t.Fatal(err)
	}
	before := edgeList(g)

	d := &Delta{
		SetWeights: []EdgeUpdate{{U: 0, V: 1, W: 50}},
		Inserts:    []EdgeUpdate{{U: 0, V: 4, W: 7}},
		Deletes:    []EdgeRef{{U: 3, V: 2}},
	}
	ng, eff, err := Apply(g, d)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}

	// Old graph untouched.
	if !reflect.DeepEqual(edgeList(g), before) {
		t.Fatal("Apply mutated the original graph")
	}
	if w, ok := ng.HasEdge(0, 1); !ok || w != 50 {
		t.Fatalf("setWeight: edge (0,1) = %d,%v; want 50", w, ok)
	}
	if w, ok := ng.HasEdge(0, 4); !ok || w != 7 {
		t.Fatalf("insert: edge (0,4) = %d,%v; want 7", w, ok)
	}
	if _, ok := ng.HasEdge(3, 2); ok {
		t.Fatal("delete: edge (3,2) still present")
	}
	if ng.NumEdges() != g.NumEdges() { // one insert, one delete
		t.Fatalf("edges: %d, want %d", ng.NumEdges(), g.NumEdges())
	}
	if ng.MaxEdgeWeight() != 50 {
		t.Fatalf("maxW: %d, want 50", ng.MaxEdgeWeight())
	}

	want := []EdgeChange{
		{U: 0, V: 1, Old: 1, New: 50},
		{U: 0, V: 4, Old: Infinity, New: 7},
		{U: 3, V: 2, Old: 3, New: Infinity},
	}
	if !reflect.DeepEqual(eff.Changes, want) {
		t.Fatalf("changes: %+v, want %+v", eff.Changes, want)
	}
	if len(eff.OldCategorySets) != 0 {
		t.Fatalf("no POI ops, but OldCategorySets = %v", eff.OldCategorySets)
	}
	// Untouched category shared with the new graph.
	nodes, err := ng.Category("poi")
	if err != nil || !reflect.DeepEqual(nodes, []NodeID{1, 3}) {
		t.Fatalf("category poi: %v, %v", nodes, err)
	}
}

func TestApplyPOIMutations(t *testing.T) {
	g := lineGraph(t, 5)
	if err := g.AddCategory("hotel", []NodeID{1, 3}); err != nil {
		t.Fatal(err)
	}
	d := &Delta{
		AddPOIs:    []POIUpdate{{Category: "hotel", Node: 0}, {Category: "fuel", Node: 4}},
		RemovePOIs: []POIUpdate{{Category: "hotel", Node: 3}},
	}
	ng, eff, err := Apply(g, d)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if nodes, _ := ng.Category("hotel"); !reflect.DeepEqual(nodes, []NodeID{0, 1}) {
		t.Fatalf("hotel: %v, want [0 1]", nodes)
	}
	if nodes, _ := ng.Category("fuel"); !reflect.DeepEqual(nodes, []NodeID{4}) {
		t.Fatalf("fuel: %v, want [4]", nodes)
	}
	if !reflect.DeepEqual(ng.Categories(), []string{"fuel", "hotel"}) {
		t.Fatalf("categories: %v", ng.Categories())
	}
	// Old graph still has the original membership.
	if nodes, _ := g.Category("hotel"); !reflect.DeepEqual(nodes, []NodeID{1, 3}) {
		t.Fatalf("original hotel mutated: %v", nodes)
	}
	if _, err := g.Category("fuel"); err == nil {
		t.Fatal("fuel leaked into the original graph")
	}
	if got := eff.OldCategorySets["hotel"]; !reflect.DeepEqual(got, []NodeID{1, 3}) {
		t.Fatalf("old hotel set: %v", got)
	}
	if set, ok := eff.OldCategorySets["fuel"]; !ok || set != nil {
		t.Fatalf("old fuel set: %v, %v (want present, nil)", set, ok)
	}
	if len(eff.Changes) != 0 {
		t.Fatalf("no edge ops, but changes = %v", eff.Changes)
	}
}

func TestApplyEmptiedCategoryIsRemoved(t *testing.T) {
	g := lineGraph(t, 3)
	if err := g.AddCategory("solo", []NodeID{2}); err != nil {
		t.Fatal(err)
	}
	ng, _, err := Apply(g, &Delta{RemovePOIs: []POIUpdate{{Category: "solo", Node: 2}}})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if _, err := ng.Category("solo"); err == nil {
		t.Fatal("emptied category still present")
	}
	if len(ng.Categories()) != 0 {
		t.Fatalf("categories: %v", ng.Categories())
	}
}

func TestApplySequentialSemantics(t *testing.T) {
	g := lineGraph(t, 4)
	// Delete (1,2) then re-insert it at a new weight, in one delta.
	d := &Delta{
		Inserts: []EdgeUpdate{{U: 1, V: 2, W: 99}},
		Deletes: []EdgeRef{},
	}
	// Insert of an existing edge must fail...
	if _, _, err := Apply(g, d); !errors.Is(err, ErrEdgeExists) {
		t.Fatalf("insert existing: %v", err)
	}
	// ...unless the delta deletes it first (field order: deletes run
	// before nothing here — inserts precede deletes, so use two steps).
	d2 := &Delta{Deletes: []EdgeRef{{U: 1, V: 2}}}
	mid, _, err := Apply(g, d2)
	if err != nil {
		t.Fatal(err)
	}
	ng, eff, err := Apply(mid, &Delta{Inserts: []EdgeUpdate{{U: 1, V: 2, W: 99}}})
	if err != nil {
		t.Fatal(err)
	}
	if w, ok := ng.HasEdge(1, 2); !ok || w != 99 {
		t.Fatalf("re-insert: %d, %v", w, ok)
	}
	if !reflect.DeepEqual(eff.Changes, []EdgeChange{{U: 1, V: 2, Old: Infinity, New: 99}}) {
		t.Fatalf("changes: %+v", eff.Changes)
	}
	// A set-then-set collapses to one net change.
	ng2, eff2, err := Apply(g, &Delta{SetWeights: []EdgeUpdate{{U: 1, V: 2, W: 5}, {U: 1, V: 2, W: 2}}})
	if err != nil {
		t.Fatal(err)
	}
	if w, _ := ng2.HasEdge(1, 2); w != 2 {
		t.Fatalf("last set wins: %d", w)
	}
	if len(eff2.Changes) != 1 || eff2.Changes[0].New != 2 || eff2.Changes[0].Old != 2 {
		// edge (1,2) has weight 2 in lineGraph: net change cancels out.
		if len(eff2.Changes) != 0 {
			t.Fatalf("cancelled change reported: %+v", eff2.Changes)
		}
	}
}

func TestApplyValidation(t *testing.T) {
	g := lineGraph(t, 3)
	if err := g.AddCategory("c", []NodeID{1}); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		d    *Delta
		want error
	}{
		{"node range", &Delta{SetWeights: []EdgeUpdate{{U: 0, V: 99, W: 1}}}, ErrNodeRange},
		{"negative weight", &Delta{SetWeights: []EdgeUpdate{{U: 0, V: 1, W: -1}}}, ErrNegativeWeight},
		{"huge weight", &Delta{Inserts: []EdgeUpdate{{U: 0, V: 2, W: Infinity}}}, ErrWeightRange},
		{"set missing", &Delta{SetWeights: []EdgeUpdate{{U: 0, V: 2, W: 1}}}, ErrEdgeMissing},
		{"insert existing", &Delta{Inserts: []EdgeUpdate{{U: 0, V: 1, W: 1}}}, ErrEdgeExists},
		{"delete missing", &Delta{Deletes: []EdgeRef{{U: 0, V: 2}}}, ErrEdgeMissing},
		{"add member", &Delta{AddPOIs: []POIUpdate{{Category: "c", Node: 1}}}, ErrPOIExists},
		{"remove non-member", &Delta{RemovePOIs: []POIUpdate{{Category: "c", Node: 0}}}, ErrPOIMissing},
		{"remove unknown cat", &Delta{RemovePOIs: []POIUpdate{{Category: "x", Node: 0}}}, ErrPOIMissing},
		{"empty cat name", &Delta{AddPOIs: []POIUpdate{{Category: "", Node: 0}}}, ErrEmptyCatName},
	}
	for _, tc := range cases {
		ng, eff, err := Apply(g, tc.d)
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
		if !errors.Is(err, ErrBadDelta) {
			t.Errorf("%s: err %v does not wrap ErrBadDelta", tc.name, err)
		}
		if ng != nil || eff != nil {
			t.Errorf("%s: failed apply returned a graph", tc.name)
		}
	}
}

func TestApplyEmptyDelta(t *testing.T) {
	g := lineGraph(t, 3)
	ng, eff, err := Apply(g, &Delta{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(edgeList(ng), edgeList(g)) {
		t.Fatal("empty delta changed edges")
	}
	if len(eff.Changes) != 0 || len(eff.OldCategorySets) != 0 {
		t.Fatalf("empty delta reported effects: %+v", eff)
	}
	if !(&Delta{}).Empty() || (&Delta{Deletes: []EdgeRef{{}}}).Empty() {
		t.Fatal("Empty misclassifies")
	}
}

func TestApplyEquivalentToRebuild(t *testing.T) {
	// Randomized: applying a delta must produce exactly the graph a
	// Builder would produce from the mutated edge list.
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(6)
		b := NewBuilder(n)
		type e struct {
			u, v NodeID
			w    Weight
		}
		edges := map[[2]NodeID]Weight{}
		for i := 0; i < 3*n; i++ {
			u, v := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
			if u == v {
				continue
			}
			if _, ok := edges[[2]NodeID{u, v}]; ok {
				continue
			}
			w := Weight(1 + rng.Intn(50))
			edges[[2]NodeID{u, v}] = w
			b.AddEdge(u, v, w)
		}
		g, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		var d Delta
		var all []e
		for k, w := range edges {
			all = append(all, e{k[0], k[1], w})
		}
		// Deterministic op choice requires deterministic iteration.
		for i := 1; i < len(all); i++ {
			for j := i; j > 0 && (all[j].u < all[j-1].u || (all[j].u == all[j-1].u && all[j].v < all[j-1].v)); j-- {
				all[j], all[j-1] = all[j-1], all[j]
			}
		}
		for _, ed := range all {
			switch rng.Intn(4) {
			case 0:
				nw := Weight(1 + rng.Intn(50))
				d.SetWeights = append(d.SetWeights, EdgeUpdate{U: ed.u, V: ed.v, W: nw})
				edges[[2]NodeID{ed.u, ed.v}] = nw
			case 1:
				d.Deletes = append(d.Deletes, EdgeRef{U: ed.u, V: ed.v})
				delete(edges, [2]NodeID{ed.u, ed.v})
			}
		}
		for tries := 0; tries < 4; tries++ {
			u, v := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
			if u == v {
				continue
			}
			// Inserts are validated before deletes apply, so the edge
			// must be absent from the original graph, not merely from
			// the final edge set.
			if _, ok := edges[[2]NodeID{u, v}]; ok {
				continue
			}
			if _, ok := g.HasEdge(u, v); ok {
				continue
			}
			w := Weight(1 + rng.Intn(50))
			d.Inserts = append(d.Inserts, EdgeUpdate{U: u, V: v, W: w})
			edges[[2]NodeID{u, v}] = w
		}
		ng, _, err := Apply(g, &d)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		rb := NewBuilder(n)
		for k, w := range edges {
			rb.AddEdge(k[0], k[1], w)
		}
		want, err := rb.Build()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(edgeList(ng), edgeList(want)) {
			t.Fatalf("seed %d: applied graph differs from rebuild", seed)
		}
		if ng.MaxEdgeWeight() != want.MaxEdgeWeight() {
			t.Fatalf("seed %d: maxW %d vs %d", seed, ng.MaxEdgeWeight(), want.MaxEdgeWeight())
		}
		if !reflect.DeepEqual(ng.outHead, want.outHead) || !reflect.DeepEqual(ng.outAdj, want.outAdj) ||
			!reflect.DeepEqual(ng.inHead, want.inHead) || !reflect.DeepEqual(ng.inAdj, want.inAdj) {
			t.Fatalf("seed %d: CSR layout differs from rebuild", seed)
		}
	}
}

func TestApplyFaultKeepsOriginal(t *testing.T) {
	g := lineGraph(t, 4)
	reg := fault.New().Add(fault.Rule{Point: fault.GraphApply, Nth: 2})
	fault.Install(reg)
	defer fault.Install(nil)
	d := &Delta{SetWeights: []EdgeUpdate{{U: 0, V: 1, W: 9}, {U: 1, V: 2, W: 9}}}
	ng, eff, err := Apply(g, d)
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("err = %v, want injected", err)
	}
	if ng != nil || eff != nil {
		t.Fatal("faulted apply returned a graph")
	}
	if w, _ := g.HasEdge(0, 1); w != 1 {
		t.Fatalf("original graph mutated: (0,1) = %d", w)
	}
	if got := reg.Hits(fault.GraphApply); got != 2 {
		t.Fatalf("fault point hit %d times, want 2 (once per op)", got)
	}
}

func TestDeltaJSONRoundTrip(t *testing.T) {
	d := &Delta{
		SetWeights: []EdgeUpdate{{U: 1, V: 2, W: 30}},
		Inserts:    []EdgeUpdate{{U: 3, V: 4, W: 5}},
		Deletes:    []EdgeRef{{U: 5, V: 6}},
		AddPOIs:    []POIUpdate{{Category: "hotel", Node: 7}},
		RemovePOIs: []POIUpdate{{Category: "fuel", Node: 8}},
	}
	data, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var back Delta
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&back, d) {
		t.Fatalf("round trip: %+v vs %+v", back, d)
	}
	if d.Ops() != 5 {
		t.Fatalf("Ops: %d", d.Ops())
	}
}
