// Testdata for the mapiter analyzer, type-checked under an import path
// that is NOT order-sensitive: nothing here may be flagged.
package unscoped

func sumDirect(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
