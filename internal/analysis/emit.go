package analysis

// Machine-readable output shared by every analyzer and both drivers:
// findings (position-resolved diagnostics) serialize to a plain JSON
// array or to a SARIF 2.1.0 log, the format CI code-scanning services
// ingest. The emitters take findings in any order and sort them into
// the global deterministic order (file, line, column, message) so two
// runs over the same tree produce byte-identical artifacts.

import (
	"encoding/json"
	"go/token"
	"io"
	"sort"
	"strings"
)

// A Finding is one diagnostic with its position resolved, the unit the
// text, JSON, and SARIF emitters consume.
type Finding struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Column   int            `json:"column"`
	Message  string         `json:"message"`
}

// NewFinding resolves one diagnostic against fset.
func NewFinding(fset *token.FileSet, d Diagnostic) Finding {
	p := fset.Position(d.Pos)
	return Finding{Analyzer: d.Analyzer, Pos: p, File: p.Filename, Line: p.Line, Column: p.Column, Message: d.Message}
}

// SortFindings orders findings globally: by file, then position, then
// message — the deterministic order every output mode emits.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return a.Message < b.Message
	})
}

// WriteJSON emits the findings as an indented JSON array (empty array,
// not null, when there are none — consumers needn't special-case).
func WriteJSON(w io.Writer, fs []Finding) error {
	SortFindings(fs)
	if fs == nil {
		fs = []Finding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	return enc.Encode(fs)
}

// SARIF 2.1.0 structures — the minimal subset GitHub code scanning and
// the sarif validators require. Field names follow the spec exactly.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// SARIFSchemaURI is the 2.1.0 schema the log declares; the validation
// test checks emitted logs against the spec's structural requirements.
const SARIFSchemaURI = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"

// WriteSARIF emits a SARIF 2.1.0 log for one kpjlint run. analyzers
// supplies the rule metadata (every suite analyzer, findings or not, so
// the rule table is stable); file paths are emitted as given — drivers
// should resolve them relative to the repository root for CI upload.
func WriteSARIF(w io.Writer, analyzers []*Analyzer, fs []Finding) error {
	SortFindings(fs)
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		doc, _, _ := strings.Cut(a.Doc, "\n")
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: doc}})
	}
	results := make([]sarifResult, 0, len(fs))
	for _, f := range fs {
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: sarifURI(f.File)},
					Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  SARIFSchemaURI,
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "kpjlint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	return enc.Encode(log)
}

// sarifURI normalizes a file path for the artifactLocation.uri field,
// which the spec requires to use forward slashes.
func sarifURI(path string) string {
	return strings.ReplaceAll(path, "\\", "/")
}
