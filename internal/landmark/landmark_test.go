package landmark

import (
	"math/rand"
	"testing"

	"kpj/internal/graph"
	"kpj/internal/sssp"
	"kpj/internal/testgraphs"
)

func buildIndex(t *testing.T, g *graph.Graph, count int, seed int64) *Index {
	t.Helper()
	ix, err := Build(g, count, seed)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return ix
}

func TestBuildErrors(t *testing.T) {
	empty, err := graph.NewBuilder(0).Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(empty, 4, 1); err == nil {
		t.Fatal("want error for empty graph")
	}
	g, err := graph.NewBuilder(3).AddEdge(0, 1, 1).Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(g, 0, 1); err == nil {
		t.Fatal("want error for zero landmarks")
	}
	if _, err := BuildWithLandmarks(g, nil); err == nil {
		t.Fatal("want error for empty landmark list")
	}
	if _, err := BuildWithLandmarks(g, []graph.NodeID{7}); err == nil {
		t.Fatal("want error for out-of-range landmark")
	}
}

func TestCountClamped(t *testing.T) {
	g, err := graph.NewBuilder(3).AddBiEdge(0, 1, 1).AddBiEdge(1, 2, 1).Build()
	if err != nil {
		t.Fatal(err)
	}
	ix := buildIndex(t, g, 10, 1)
	if ix.Count() > 3 {
		t.Fatalf("Count = %d, want <= 3", ix.Count())
	}
	if len(ix.Landmarks()) != ix.Count() {
		t.Fatal("Landmarks length mismatch")
	}
	if ix.SizeBytes() <= 0 {
		t.Fatal("SizeBytes must be positive")
	}
}

func TestSelectionDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := testgraphs.RandomConnected(rng, 50, 100, 20)
	a := buildIndex(t, g, 6, 42)
	b := buildIndex(t, g, 6, 42)
	la, lb := a.Landmarks(), b.Landmarks()
	for i := range la {
		if la[i] != lb[i] {
			t.Fatalf("same seed gave different landmarks: %v vs %v", la, lb)
		}
	}
}

// Admissibility: lb(u,v) <= δ(u,v) for every pair, and lb == Infinity only
// when v is truly unreachable from u. Exercised on connected, disconnected,
// directed and undirected random graphs.
func TestPairLowerBoundAdmissible(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(30)
		var g *graph.Graph
		switch trial % 3 {
		case 0:
			g = testgraphs.RandomConnected(rng, n, n, 20)
		case 1:
			g = testgraphs.Random(rng, n, 2, 20, false) // likely disconnected
		default:
			g = testgraphs.Random(rng, n, 2, 20, true)
		}
		ix := buildIndex(t, g, 1+rng.Intn(5), int64(trial))
		for u := graph.NodeID(0); int(u) < n; u++ {
			exact := sssp.Dijkstra(g, graph.Forward, u).Dist
			for v := graph.NodeID(0); int(v) < n; v++ {
				lb := ix.LowerBound(u, v)
				if lb > exact[v] {
					t.Fatalf("trial %d: lb(%d,%d) = %d > δ = %d", trial, u, v, lb, exact[v])
				}
				if lb >= graph.Infinity && exact[v] < graph.Infinity {
					t.Fatalf("trial %d: lb(%d,%d) = Inf but δ = %d", trial, u, v, exact[v])
				}
			}
		}
	}
}

// Consistency: the ALT heuristic must satisfy h(u) <= ω(u,x) + h(x) for
// every edge (u,x), which A* with early termination relies on.
func TestPairLowerBoundConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(25)
		g := testgraphs.Random(rng, n, 3, 15, trial%2 == 0)
		ix := buildIndex(t, g, 1+rng.Intn(4), int64(trial))
		for target := graph.NodeID(0); int(target) < n; target += 3 {
			for u := graph.NodeID(0); int(u) < n; u++ {
				hu := ix.LowerBound(u, target)
				for _, e := range g.Out(u) {
					hx := ix.LowerBound(e.To, target)
					if hx >= graph.Infinity {
						continue // u may still reach target another way
					}
					if hu < graph.Infinity && hu > e.W+hx {
						t.Fatalf("trial %d: inconsistent: h(%d)=%d > %d + h(%d)=%d (target %d)",
							trial, u, hu, e.W, e.To, hx, target)
					}
				}
			}
		}
	}
}

// Eq. 2 bound: lb(u, V_T) <= min_{v∈V_T} δ(u,v), Infinity only if no target
// is reachable.
func TestBoundsToSetAdmissible(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(30)
		var g *graph.Graph
		if trial%2 == 0 {
			g = testgraphs.RandomConnected(rng, n, n, 20)
		} else {
			g = testgraphs.Random(rng, n, 2, 20, false)
		}
		ix := buildIndex(t, g, 1+rng.Intn(5), int64(trial))
		size := 1 + rng.Intn(n)
		targets := testgraphs.RandomCategory(rng, g, "T", size)
		bounds := ix.BoundsToSet(targets)
		exactToSet := sssp.DistancesToSet(g, targets)
		for u := graph.NodeID(0); int(u) < n; u++ {
			lb := bounds.LowerBound(u)
			if lb > exactToSet[u] {
				t.Fatalf("trial %d: lb(%d,T) = %d > δ = %d (|T|=%d)", trial, u, lb, exactToSet[u], size)
			}
			if lb >= graph.Infinity && exactToSet[u] < graph.Infinity {
				t.Fatalf("trial %d: lb(%d,T) = Inf but δ = %d", trial, u, exactToSet[u])
			}
		}
	}
}

func TestBoundsToSetPanicsOnEmpty(t *testing.T) {
	g := testgraphs.Fig1()
	ix := buildIndex(t, g, 2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for empty target set")
		}
	}()
	ix.BoundsToSet(nil)
}

func TestLowerBoundSelf(t *testing.T) {
	g := testgraphs.Fig1()
	ix := buildIndex(t, g, 4, 1)
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		if lb := ix.LowerBound(v, v); lb != 0 {
			t.Fatalf("lb(%d,%d) = %d, want 0", v, v, lb)
		}
	}
}

// On the Fig. 1 fixture the bound for the hotel category must never exceed
// the known exact distances and must be exact at the hotels themselves.
func TestFig1CategoryBound(t *testing.T) {
	g := testgraphs.Fig1()
	hotels, err := g.Category(testgraphs.HotelCategory)
	if err != nil {
		t.Fatal(err)
	}
	ix := buildIndex(t, g, 8, 3)
	bounds := ix.BoundsToSet(hotels)
	if lb := bounds.LowerBound(testgraphs.V1); lb > 5 {
		t.Fatalf("lb(v1,H) = %d > 5", lb)
	}
	for _, h := range hotels {
		if lb := bounds.LowerBound(h); lb != 0 {
			t.Fatalf("lb(hotel %d) = %d, want 0", h, lb)
		}
	}
}

// More landmarks can only tighten (or keep) the single-landmark bound when
// the landmark sets are nested.
func TestMoreLandmarksTighter(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := testgraphs.RandomConnected(rng, 40, 80, 20)
	small, err := BuildWithLandmarks(g, []graph.NodeID{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	big, err := BuildWithLandmarks(g, []graph.NodeID{0, 1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	for u := graph.NodeID(0); u < 40; u += 2 {
		for v := graph.NodeID(1); v < 40; v += 3 {
			if big.LowerBound(u, v) < small.LowerBound(u, v) {
				t.Fatalf("nested landmark set loosened bound at (%d,%d)", u, v)
			}
		}
	}
}

// Unreachable propagation: in a two-component graph the bound must report
// Infinity across components (landmark permitting) and never block within.
func TestDisconnectedComponents(t *testing.T) {
	// Component A: 0-1, component B: 2-3 (bidirectional).
	g, err := graph.NewBuilder(4).AddBiEdge(0, 1, 5).AddBiEdge(2, 3, 7).Build()
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildWithLandmarks(g, []graph.NodeID{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if lb := ix.LowerBound(0, 2); lb < graph.Infinity {
		t.Fatalf("lb(0,2) = %d, want Infinity", lb)
	}
	if lb := ix.LowerBound(0, 1); lb > 5 {
		t.Fatalf("lb(0,1) = %d > 5", lb)
	}
	if err := g.AddCategory("B", []graph.NodeID{2, 3}); err != nil {
		t.Fatal(err)
	}
	targets, _ := g.Category("B")
	bounds := ix.BoundsToSet(targets)
	if lb := bounds.LowerBound(0); lb < graph.Infinity {
		t.Fatalf("lb(0,B) = %d, want Infinity", lb)
	}
	if lb := bounds.LowerBound(3); lb > 0 {
		t.Fatalf("lb(3,B) = %d, want 0", lb)
	}
}
