package vetdriver

// These tests drive Main through the real `go vet -vettool` unit
// protocol: a scratch module (named kpj, so the facts gate recognizes
// it) is listed with `go list -export`, per-unit config files are
// written the way cmd/go writes them, and the dependency's facts flow
// to the dependent through an actual vetx file on disk. The exit-code
// assertions are the regression guard for CI failing (not warning) on
// findings.

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kpj/internal/analysis"
	"kpj/internal/analysis/allocfree"
	"kpj/internal/analysis/loadpkg"
)

// writeFixtureModule lays out the two-package scratch module and
// returns its root: fa allocates; fb's noalloc root calls it.
func writeFixtureModule(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	files := map[string]string{
		"go.mod": "module kpj\n\ngo 1.22\n",
		"fa/fa.go": `package fa

// Alloc allocates a fresh slice.
func Alloc(n int) []int {
	return make([]int, n)
}

// Clean does not allocate.
func Clean(n int) int { return n + 1 }
`,
		"fb/fb.go": `package fb

import "kpj/fa"

//kpjlint:noalloc
func Root(n int) {
	_ = fa.Alloc(n)
	_ = fa.Clean(n)
}
`,
	}
	for name, content := range files {
		path := filepath.Join(root, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func writeConfig(t *testing.T, dir string, cfg *Config) string {
	t.Helper()
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, cfg.ID+".cfg")
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestProtocolFactsRoundTrip(t *testing.T) {
	root := writeFixtureModule(t)
	metas, err := loadpkg.List(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	byPath := map[string]*loadpkg.Meta{}
	for _, m := range metas {
		byPath[m.ImportPath] = m
	}
	fa, fb := byPath["kpj/fa"], byPath["kpj/fb"]
	if fa == nil || fb == nil {
		t.Fatalf("go list did not return the fixture packages: %v", byPath)
	}

	goFiles := func(m *loadpkg.Meta) []string {
		out := make([]string, len(m.GoFiles))
		for i, f := range m.GoFiles {
			out[i] = filepath.Join(m.Dir, f)
		}
		return out
	}

	scratch := t.TempDir()
	faVetx := filepath.Join(scratch, "fa.vetx")
	analyzers := []*analysis.Analyzer{allocfree.Analyzer}

	// Unit 1: the dependency, facts-only, as cmd/go schedules it.
	cfgA := &Config{
		ID:         "fa",
		Compiler:   "gc",
		Dir:        root,
		ImportPath: "kpj/fa",
		GoFiles:    goFiles(fa),
		ImportMap:  map[string]string{},
		VetxOnly:   true,
		VetxOutput: faVetx,
	}
	var stderrA bytes.Buffer
	if code := Main(writeConfig(t, scratch, cfgA), &stderrA, analyzers); code != 0 {
		t.Fatalf("VetxOnly unit exited %d, want 0; stderr:\n%s", code, stderrA.String())
	}
	if stderrA.Len() != 0 {
		t.Errorf("VetxOnly unit printed diagnostics: %s", stderrA.String())
	}
	data, err := os.ReadFile(faVetx)
	if err != nil {
		t.Fatalf("dependency unit wrote no vetx file: %v", err)
	}
	facts, err := analysis.DecodeFacts(data)
	if err != nil {
		t.Fatal(err)
	}
	if facts[allocfree.Analyzer.Name] == nil {
		t.Fatalf("vetx file has no allocfree facts: %s", data)
	}

	// Unit 2: the dependent target, reading the dependency's vetx file.
	// The dangling PackageVetx entry checks missing-file tolerance.
	cfgB := &Config{
		ID:         "fb",
		Compiler:   "gc",
		Dir:        root,
		ImportPath: "kpj/fb",
		GoFiles:    goFiles(fb),
		ImportMap:  map[string]string{"kpj/fa": "kpj/fa"},
		PackageFile: map[string]string{
			"kpj/fa": fa.Export,
		},
		PackageVetx: map[string]string{
			"kpj/fa":      faVetx,
			"kpj/missing": filepath.Join(scratch, "does-not-exist.vetx"),
		},
		VetxOutput: filepath.Join(scratch, "fb.vetx"),
	}
	cfgBPath := writeConfig(t, scratch, cfgB)
	var stderrB bytes.Buffer
	code := Main(cfgBPath, &stderrB, analyzers)
	if code != 1 {
		t.Fatalf("target unit with findings exited %d, want 1; stderr:\n%s", code, stderrB.String())
	}
	out := stderrB.String()
	if !strings.Contains(out, "call to fa.Alloc, which allocates") ||
		!strings.Contains(out, "root fb.Root") {
		t.Errorf("diagnostic does not cross the package boundary via facts:\n%s", out)
	}
	if strings.Contains(out, "fa.Clean") {
		t.Errorf("allocation-free dependency call was flagged:\n%s", out)
	}

	// Exit-code regression: the same findings under VetxOnly are
	// suppressed (exit 0), so only the target unit fails the build.
	cfgB.ID = "fb-vetxonly"
	cfgB.VetxOnly = true
	cfgB.VetxOutput = filepath.Join(scratch, "fb2.vetx")
	var stderrC bytes.Buffer
	if code := Main(writeConfig(t, scratch, cfgB), &stderrC, analyzers); code != 0 {
		t.Fatalf("VetxOnly target exited %d, want 0", code)
	}
	if stderrC.Len() != 0 {
		t.Errorf("VetxOnly target printed diagnostics: %s", stderrC.String())
	}
}

// TestStdlibUnitWritesEmptyVetx covers the non-module fast path: the
// unit must still produce the output file the build cache expects.
func TestStdlibUnitWritesEmptyVetx(t *testing.T) {
	scratch := t.TempDir()
	vetx := filepath.Join(scratch, "std.vetx")
	cfg := &Config{
		ID:         "std",
		ImportPath: "strings",
		VetxOnly:   true,
		VetxOutput: vetx,
	}
	var stderr bytes.Buffer
	if code := Main(writeConfig(t, scratch, cfg), &stderr, nil); code != 0 {
		t.Fatalf("stdlib unit exited %d, want 0", code)
	}
	data, err := os.ReadFile(vetx)
	if err != nil {
		t.Fatalf("stdlib unit wrote no vetx file: %v", err)
	}
	if facts, err := analysis.DecodeFacts(data); err != nil || facts != nil {
		t.Errorf("stdlib vetx should decode to no facts, got %v, %v", facts, err)
	}
}
