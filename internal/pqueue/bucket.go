package pqueue

import "math/bits"

// MaxBucketEdgeWeight is the selection rule for BucketQueue: callers running
// a plain (monotone) Dijkstra over a graph whose maximum edge weight is in
// (0, MaxBucketEdgeWeight] should prefer a BucketQueue; beyond that the key
// range is unfriendly (too many significant bits per redistribution) and the
// binary-heap NodeQueue wins. The bound is generous on purpose: road-network
// weights (travel times, scaled distances) sit far below it.
const MaxBucketEdgeWeight = int64(1) << 30

// bqItem is one queued (node, key) pair.
type bqItem struct {
	node int32
	key  int64
}

// BucketQueue is a monotone integer-key priority queue — a radix heap with
// binary delta buckets and lazy insertion (no decrease-key: improved keys are
// pushed again and stale pops are skipped by the caller's distance check).
//
// It exploits the monotonicity of label-setting searches: the sequence of
// popped keys never decreases, and every pushed key is >= the last popped
// key. Bucket i holds items whose key first differs from the last popped key
// at bit i-1, so each redistribution moves an item to a strictly lower
// bucket; any item is touched O(64) times total, and in practice O(log C)
// for maximum edge weight C. Keys must be non-negative.
//
// It is NOT safe for A*-style searches with inconsistent heuristics (the
// subspace searches of internal/core re-expand nodes and can push keys below
// the current minimum); those must keep using NodeQueue. Pop order among
// equal keys differs from NodeQueue, so callers that need queue-independent
// output must derive it canonically (see sssp's parent tie-breaking).
//
// The zero value is ready to use with last popped key 0.
type BucketQueue struct {
	last    int64 // most recently popped key (all live keys are >= last)
	size    int
	buckets [65][]bqItem // index = bits.Len64(key ^ last), 0 => key == last
}

// NewBucketQueue returns an empty queue.
func NewBucketQueue() *BucketQueue { return &BucketQueue{} }

// Len returns the number of queued items, counting stale duplicates.
func (q *BucketQueue) Len() int { return q.size }

// Reset empties the queue, retaining bucket capacity.
func (q *BucketQueue) Reset() {
	for i := range q.buckets {
		q.buckets[i] = q.buckets[i][:0]
	}
	q.last = 0
	q.size = 0
}

// Push inserts node v with the given key. It panics if key is below the last
// popped key (a monotonicity violation — the caller picked the wrong queue).
func (q *BucketQueue) Push(v int32, key int64) {
	if key < q.last {
		panic("pqueue: BucketQueue key below last popped key (non-monotone caller)")
	}
	i := bits.Len64(uint64(key ^ q.last))
	q.buckets[i] = append(q.buckets[i], bqItem{node: v, key: key})
	q.size++
}

// Pop removes and returns an item with the minimum key. It panics on an
// empty queue. Stale duplicates of a node may be returned; callers skip them
// with their own settled/distance check.
func (q *BucketQueue) Pop() (v int32, key int64) {
	if q.size == 0 {
		panic("pqueue: Pop on empty BucketQueue")
	}
	if len(q.buckets[0]) == 0 {
		q.refill()
	}
	b := q.buckets[0]
	it := b[len(b)-1]
	q.buckets[0] = b[:len(b)-1]
	q.size--
	return it.node, it.key
}

// refill locates the lowest non-empty bucket, advances last to its minimum
// key, and redistributes its items. Every item lands in a strictly lower
// bucket (items in bucket i agree with each other on bits >= i-1, so after
// last becomes one of them they differ from last only below bit i-1).
func (q *BucketQueue) refill() {
	i := 1
	for len(q.buckets[i]) == 0 {
		i++
	}
	b := q.buckets[i]
	min := b[0].key
	for _, it := range b[1:] {
		if it.key < min {
			min = it.key
		}
	}
	q.last = min
	for _, it := range b {
		j := bits.Len64(uint64(it.key ^ min))
		q.buckets[j] = append(q.buckets[j], it)
	}
	q.buckets[i] = b[:0]
}
