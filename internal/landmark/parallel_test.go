package landmark

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"kpj/internal/graph"
	"kpj/internal/testgraphs"
)

// TestBuildParallelDeterminism: the parallel build must produce exactly
// the same index — landmark choice and every distance table — at every
// worker count, because farthest-point selection is inherently sequential
// and only the independent Dijkstras are fanned out.
func TestBuildParallelDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := testgraphs.RandomConnected(rng, 80, 240, 30)
	want, err := BuildParallel(g, 8, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		got, err := BuildParallel(g, 8, 3, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got.Landmarks(), want.Landmarks()) {
			t.Fatalf("workers=%d: landmarks %v, want %v", workers, got.Landmarks(), want.Landmarks())
		}
		if !reflect.DeepEqual(got.fwd, want.fwd) || !reflect.DeepEqual(got.bwd, want.bwd) {
			t.Fatalf("workers=%d: distance tables differ from sequential build", workers)
		}
		if got.Fingerprint() != want.Fingerprint() {
			t.Fatalf("workers=%d: fingerprint %x, want %x", workers, got.Fingerprint(), want.Fingerprint())
		}
	}
}

// TestFingerprintDistinguishes: indexes over different graphs or with
// different landmark sets must not share a fingerprint (the cache's
// invalidation key).
func TestFingerprintDistinguishes(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := testgraphs.RandomConnected(rng, 60, 180, 25)
	a, err := Build(g, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(g, 6, 9) // different seed → (very likely) different landmarks
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Landmarks(), b.Landmarks()) {
		t.Skip("seeds selected identical landmarks; nothing to distinguish")
	}
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("different landmark sets share a fingerprint")
	}
	// Same graph + same landmarks (rebuilt) → same fingerprint, so a
	// reloaded index keeps its warm cache.
	c, err := BuildWithLandmarks(g, a.Landmarks())
	if err != nil {
		t.Fatal(err)
	}
	if c.Fingerprint() != a.Fingerprint() {
		t.Fatal("rebuild with identical landmarks changed the fingerprint")
	}
}

// TestSetBoundsCacheCorrectness: cache answers must be the very tables the
// index computes, across both directions, with hits on repeats.
func TestSetBoundsCacheCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := testgraphs.RandomConnected(rng, 70, 200, 25)
	ix, err := Build(g, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	c := NewSetBoundsCache(4)
	targets := []graph.NodeID{3, 11, 40}
	sources := []graph.NodeID{7, 22}

	direct := ix.BoundsToSet(targets)
	for round := 0; round < 3; round++ {
		got := c.BoundsToSet(ix, targets)
		for v := 0; v < g.NumNodes(); v++ {
			if got.LowerBound(graph.NodeID(v)) != direct.LowerBound(graph.NodeID(v)) {
				t.Fatalf("round %d: cached to-set bound differs at node %d", round, v)
			}
		}
	}
	directFrom := ix.BoundsFromSet(sources)
	for round := 0; round < 3; round++ {
		got := c.BoundsFromSet(ix, sources)
		for v := 0; v < g.NumNodes(); v++ {
			if got.LowerBound(graph.NodeID(v)) != directFrom.LowerBound(graph.NodeID(v)) {
				t.Fatalf("round %d: cached from-set bound differs at node %d", round, v)
			}
		}
	}
	hits, misses, size := c.Stats()
	if misses != 2 || hits != 4 {
		t.Errorf("hits=%d misses=%d, want 4/2", hits, misses)
	}
	if size != 2 {
		t.Errorf("size=%d, want 2", size)
	}
}

// TestSetBoundsCacheLRU: the capacity is honored and the least recently
// used entry is the one evicted.
func TestSetBoundsCacheLRU(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	g := testgraphs.RandomConnected(rng, 50, 150, 20)
	ix, err := Build(g, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	c := NewSetBoundsCache(2)
	setA := []graph.NodeID{1, 2}
	setB := []graph.NodeID{3, 4}
	setC := []graph.NodeID{5, 6}
	c.BoundsToSet(ix, setA) // miss
	c.BoundsToSet(ix, setB) // miss
	c.BoundsToSet(ix, setA) // hit; A now most recent
	c.BoundsToSet(ix, setC) // miss; evicts B
	c.BoundsToSet(ix, setA) // hit
	c.BoundsToSet(ix, setB) // miss again (was evicted)
	hits, misses, size := c.Stats()
	if hits != 2 || misses != 4 {
		t.Errorf("hits=%d misses=%d, want 2/4", hits, misses)
	}
	if size != 2 {
		t.Errorf("size=%d, want capacity 2", size)
	}
}

// TestSetBoundsCacheConcurrent hammers one cache from many goroutines
// (run with -race): all answers must match the direct computation.
func TestSetBoundsCacheConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	g := testgraphs.RandomConnected(rng, 60, 180, 25)
	ix, err := Build(g, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	sets := [][]graph.NodeID{{1, 5, 9}, {2, 6, 10}, {3, 7, 11}, {4, 8, 12}}
	want := make([]*Bounds, len(sets))
	for i, s := range sets {
		want[i] = ix.BoundsToSet(s)
	}
	c := NewSetBoundsCache(2) // under-sized: eviction races with lookups
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < 50; r++ {
				i := (w + r) % len(sets)
				got := c.BoundsToSet(ix, sets[i])
				for _, v := range []graph.NodeID{0, graph.NodeID(g.NumNodes() / 2)} {
					if got.LowerBound(v) != want[i].LowerBound(v) {
						t.Errorf("worker %d round %d: bound mismatch at %d", w, r, v)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}
