package kpj_test

import (
	"errors"
	"testing"

	"kpj"
)

// deltaGraph: two disjoint 4-cycles (nodes 0..3 and 4..7) with one
// category in each component.
func deltaGraph(t *testing.T) *kpj.Graph {
	t.Helper()
	b := kpj.NewBuilder(8)
	for _, base := range []kpj.NodeID{0, 4} {
		for i := kpj.NodeID(0); i < 4; i++ {
			b.AddEdge(base+i, base+(i+1)%4, 2)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := g.AddCategory("a", []kpj.NodeID{1, 3}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddCategory("b", []kpj.NodeID{5, 7}); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestWithDelta(t *testing.T) {
	g := deltaGraph(t)
	ng, err := g.WithDelta(&kpj.Delta{
		SetWeights: []kpj.EdgeUpdate{{U: 0, V: 1, W: 9}},
		AddPOIs:    []kpj.POIUpdate{{Category: "a", Node: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := g.Category("a"); len(got) != 2 {
		t.Fatal("old graph's category mutated")
	}
	if got, _ := ng.Category("a"); len(got) != 3 {
		t.Fatalf("new category = %v", got)
	}
	// Queries work on both generations independently.
	oldPaths, err := g.TopKJoin(0, "a", 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	newPaths, err := ng.TopKJoin(0, "a", 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if oldPaths[0].Length != 2 {
		t.Fatalf("old best = %d, want 2", oldPaths[0].Length)
	}
	// On the new graph the only way out of 0 is the reweighted 0->1 (9).
	if newPaths[0].Length != 9 {
		t.Fatalf("new best = %d, want 9", newPaths[0].Length)
	}
	// Invalid delta: untouched graph, error surfaced.
	if _, err := g.WithDelta(&kpj.Delta{Deletes: []kpj.EdgeRef{{U: 0, V: 3}}}); err == nil {
		t.Fatal("deleting a missing edge succeeded")
	}
}

func TestIndexApplyMatchesRebuild(t *testing.T) {
	g := deltaGraph(t)
	ix, err := kpj.BuildIndex(g, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	d := &kpj.Delta{
		SetWeights: []kpj.EdgeUpdate{{U: 0, V: 1, W: 1}},
		Inserts:    []kpj.EdgeUpdate{{U: 0, V: 2, W: 3}},
	}
	app, err := ix.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := kpj.BuildIndexWithLandmarks(app.Graph, ix.Landmarks())
	if err != nil {
		t.Fatal(err)
	}
	if app.Index.TablesChecksum() != ref.TablesChecksum() {
		t.Fatal("applied index differs from from-scratch rebuild")
	}
	if app.Index.Fingerprint() == ix.Fingerprint() {
		t.Fatal("fingerprint did not move with the graph")
	}
	if app.Stats.Landmarks != 4 {
		t.Fatalf("stats = %+v", app.Stats)
	}
	// Old pair still queryable.
	if _, err := g.TopKJoin(0, "a", 2, &kpj.Options{Index: ix}); err != nil {
		t.Fatal(err)
	}
	// New pair agrees with an unindexed query on the new graph.
	got, err := app.Graph.TopKJoin(0, "a", 3, &kpj.Options{Index: app.Index})
	if err != nil {
		t.Fatal(err)
	}
	want, err := app.Graph.TopKJoin(0, "a", 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d paths, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Length != want[i].Length {
			t.Fatalf("path %d: %d vs %d", i, got[i].Length, want[i].Length)
		}
	}
}

func TestIndexApplyInvalidDeltaKeepsOld(t *testing.T) {
	g := deltaGraph(t)
	ix, err := kpj.BuildIndex(g, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	before := ix.TablesChecksum()
	_, err = ix.Apply(&kpj.Delta{Inserts: []kpj.EdgeUpdate{{U: 0, V: 1, W: 5}}}) // exists
	if err == nil {
		t.Fatal("inserting an existing edge succeeded")
	}
	if ix.TablesChecksum() != before {
		t.Fatal("failed apply mutated the index")
	}
}

func TestApplyRekeyBounds(t *testing.T) {
	g := deltaGraph(t)
	ix, err := kpj.BuildIndex(g, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	cache := kpj.NewBoundsCache(16)
	opts := &kpj.Options{Index: ix, BoundsCache: cache}
	if _, err := g.TopKJoin(0, "a", 2, opts); err != nil {
		t.Fatal(err)
	}
	if _, err := g.TopKJoin(4, "b", 2, opts); err != nil {
		t.Fatal(err)
	}
	warm := cache.FullStats()
	if warm.Size == 0 {
		t.Fatal("cache did not warm up")
	}

	// Touch component A only; category "b" tables must survive warm.
	app, err := ix.Apply(&kpj.Delta{SetWeights: []kpj.EdgeUpdate{{U: 0, V: 1, W: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	migrated, dropped := app.RekeyBounds(cache)
	if migrated == 0 {
		t.Fatalf("nothing migrated (dropped %d)", dropped)
	}
	afterRekey := cache.FullStats()
	if int64(dropped) != afterRekey.Evictions-warm.Evictions {
		t.Fatalf("dropped %d but evictions moved %d", dropped, afterRekey.Evictions-warm.Evictions)
	}
	h0 := afterRekey.Hits
	nopts := &kpj.Options{Index: app.Index, BoundsCache: cache}
	if _, err := app.Graph.TopKJoin(4, "b", 2, nopts); err != nil {
		t.Fatal(err)
	}
	if hits := cache.FullStats().Hits; hits == h0 {
		t.Fatal("migrated category-b tables were not reused")
	}
	// Correctness after migration: indexed matches unindexed on the new
	// graph for the touched category too.
	got, err := app.Graph.TopKJoin(0, "a", 3, nopts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := app.Graph.TopKJoin(0, "a", 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i].Length != want[i].Length {
			t.Fatalf("path %d: %d vs %d", i, got[i].Length, want[i].Length)
		}
	}

	// A POI change drops the category's cached tables even when no
	// distances moved.
	app2, err := app.Index.Apply(&kpj.Delta{AddPOIs: []kpj.POIUpdate{{Category: "b", Node: 6}}})
	if err != nil {
		t.Fatal(err)
	}
	if app2.Stats.Repaired() != 0 {
		t.Fatalf("POI-only delta repaired tables: %+v", app2.Stats)
	}
	_, dropped2 := app2.RekeyBounds(cache)
	if dropped2 == 0 {
		t.Fatal("POI change did not drop the category's tables")
	}
}

func TestApplyErrorsWrapBadDelta(t *testing.T) {
	g := deltaGraph(t)
	_, err := g.WithDelta(&kpj.Delta{RemovePOIs: []kpj.POIUpdate{{Category: "a", Node: 0}}})
	if !errors.Is(err, kpj.ErrBadDelta) {
		t.Fatalf("err = %v, want ErrBadDelta", err)
	}
}
