package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"kpj"
)

func testServer(t testing.TB, opts ...Option) (*Server, *kpj.Graph) {
	t.Helper()
	// A 6×6 grid city with two categories.
	const w, h = 6, 6
	b := kpj.NewBuilder(w * h)
	id := func(x, y int) kpj.NodeID { return kpj.NodeID(y*w + x) }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				b.AddBiEdge(id(x, y), id(x+1, y), 10)
			}
			if y+1 < h {
				b.AddBiEdge(id(x, y), id(x, y+1), 10)
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := g.AddCategory("hotel", []kpj.NodeID{id(5, 5), id(2, 3)}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddCategory("start", []kpj.NodeID{id(0, 0), id(5, 0)}); err != nil {
		t.Fatal(err)
	}
	ix, err := kpj.BuildIndex(g, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	return New(g, ix, opts...), g
}

func get(t *testing.T, s *Server, url string) (*httptest.ResponseRecorder, []byte) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, url, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec, rec.Body.Bytes()
}

func TestHealthz(t *testing.T) {
	s, g := testServer(t)
	rec, body := get(t, s, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	var out map[string]any
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out["status"] != "ok" || int(out["nodes"].(float64)) != g.NumNodes() || out["indexed"] != true {
		t.Fatalf("healthz = %v", out)
	}
}

func TestCategoriesEndpoint(t *testing.T) {
	s, _ := testServer(t)
	rec, body := get(t, s, "/categories")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var out map[string]int
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out["hotel"] != 2 || out["start"] != 2 {
		t.Fatalf("categories = %v", out)
	}
}

func TestQueryKPJ(t *testing.T) {
	s, g := testServer(t)
	rec, body := get(t, s, "/query?source=0&category=hotel&k=3&stats=1")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	var out QueryResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Paths) != 3 {
		t.Fatalf("paths = %v", out.Paths)
	}
	// Nearest hotel from (0,0) is (2,3): manhattan 5 hops × 10.
	if out.Paths[0].Length != 50 {
		t.Fatalf("P1 length = %d, want 50", out.Paths[0].Length)
	}
	if out.Stats == nil || out.Stats.NodesPopped == 0 {
		t.Fatalf("stats missing: %+v", out.Stats)
	}
	// Must agree with the library directly.
	want, err := g.TopKJoin(0, "hotel", 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i].Length != out.Paths[i].Length {
			t.Fatalf("server and library disagree at %d", i)
		}
	}
}

func TestQueryKSPAndGKPJ(t *testing.T) {
	s, _ := testServer(t)
	rec, body := get(t, s, "/query?source=0&target=35&k=2&alg=BestFirst")
	if rec.Code != http.StatusOK {
		t.Fatalf("KSP status %d: %s", rec.Code, body)
	}
	var out QueryResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Paths) != 2 || out.Paths[0].Length != 100 {
		t.Fatalf("KSP paths = %v", out.Paths)
	}
	rec, body = get(t, s, "/query?sourceCategory=start&category=hotel&k=2&alpha=1.2")
	if rec.Code != http.StatusOK {
		t.Fatalf("GKPJ status %d: %s", rec.Code, body)
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Paths) != 2 {
		t.Fatalf("GKPJ paths = %v", out.Paths)
	}
}

func TestQueryErrorsHTTP(t *testing.T) {
	s, _ := testServer(t, WithMaxK(10))
	cases := []string{
		"/query",          // no source
		"/query?source=0", // no destination
		"/query?source=0&sourceCategory=start&category=hotel", // both sources
		"/query?source=0&category=hotel&target=3",             // both destinations
		"/query?source=x&category=hotel",                      // bad source
		"/query?source=0&target=x",                            // bad target
		"/query?source=0&category=nope",                       // unknown category
		"/query?sourceCategory=nope&category=hotel",           // unknown source category
		"/query?source=0&category=hotel&k=0",                  // bad k
		"/query?source=0&category=hotel&k=11",                 // k over limit
		"/query?source=0&category=hotel&alg=nope",             // unknown algorithm
		"/query?source=0&category=hotel&alpha=0.5",            // bad alpha
	}
	for _, url := range cases {
		rec, body := get(t, s, url)
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400 (%s)", url, rec.Code, body)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Fatalf("%s: error body %q", url, body)
		}
	}
	// Out-of-range source id parses but fails query validation — still a
	// client error (mapped via errors.Is), not a 500.
	rec, _ := get(t, s, "/query?source=9999&category=hotel")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("out-of-range source: status %d, want 400", rec.Code)
	}
}

func TestBatchEndpoint(t *testing.T) {
	s, _ := testServer(t)
	reqBody := `[
		{"sources":[0],"category":"hotel","k":2},
		{"sourceCategory":"start","category":"hotel","k":1},
		{"sources":[0],"targets":[35],"k":2},
		{"sources":[0],"category":"nope"},
		{"sources":[0],"category":"hotel","k":5000}
	]`
	req := httptest.NewRequest(http.MethodPost, "/batch", strings.NewReader(reqBody))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var out []BatchResponseItem
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 5 {
		t.Fatalf("got %d items", len(out))
	}
	if len(out[0].Paths) != 2 || out[0].Error != "" {
		t.Fatalf("item 0 = %+v", out[0])
	}
	if len(out[1].Paths) != 1 {
		t.Fatalf("item 1 = %+v", out[1])
	}
	if len(out[2].Paths) != 2 || out[2].Paths[0].Length != 100 {
		t.Fatalf("item 2 = %+v", out[2])
	}
	if out[3].Error == "" {
		t.Fatal("unknown category must error")
	}
	if out[4].Error == "" {
		t.Fatal("k over limit must error")
	}
}

func TestBatchBadJSON(t *testing.T) {
	s, _ := testServer(t)
	req := httptest.NewRequest(http.MethodPost, "/batch", strings.NewReader("{not json"))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d", rec.Code)
	}
}

func TestMethodRouting(t *testing.T) {
	s, _ := testServer(t)
	req := httptest.NewRequest(http.MethodPost, "/query?source=0&category=hotel", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed && rec.Code != http.StatusNotFound {
		t.Fatalf("POST /query status %d", rec.Code)
	}
	req = httptest.NewRequest(http.MethodGet, "/batch", nil)
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed && rec.Code != http.StatusNotFound {
		t.Fatalf("GET /batch status %d", rec.Code)
	}
}

func TestNoIndexServer(t *testing.T) {
	b := kpj.NewBuilder(2).AddBiEdge(0, 1, 7)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := g.AddCategory("x", []kpj.NodeID{1}); err != nil {
		t.Fatal(err)
	}
	s := New(g, nil)
	rec, body := get(t, s, "/query?source=0&category=x&k=1")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	var out QueryResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Paths) != 1 || out.Paths[0].Length != 7 {
		t.Fatalf("paths = %v", out.Paths)
	}
}
