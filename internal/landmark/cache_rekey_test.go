package landmark

import (
	"testing"

	"kpj/internal/graph"
)

// twoComponents builds two disjoint 4-node directed cycles: nodes 0..3
// (component A) and 4..7 (component B). A weight change inside one
// component can never dirty the other's landmark entries.
func twoComponents(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(8)
	for _, base := range []graph.NodeID{0, 4} {
		for i := graph.NodeID(0); i < 4; i++ {
			b.AddEdge(base+i, base+(i+1)%4, 2)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestCacheRekeyScopedInvalidation is the fingerprint-scoped invalidation
// contract: after a delta touching only component A, Rekey drops A's
// cached tables (exact eviction accounting) while B's survive under the
// new fingerprint, still serving hits — and serving answers identical to
// a fresh build against the repaired index.
func TestCacheRekeyScopedInvalidation(t *testing.T) {
	g := twoComponents(t)
	old, err := BuildWithLandmarks(g, []graph.NodeID{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	c := NewSetBoundsCache(8)
	catA := []graph.NodeID{1, 3}
	catB := []graph.NodeID{5, 7}
	bA := c.BoundsToSet(old, catA)
	bB := c.BoundsToSet(old, catB)
	fB := c.BoundsFromSet(old, catB)
	if s := c.FullStats(); s.Size != 3 || s.Misses != 3 {
		t.Fatalf("warmup stats: %+v", s)
	}

	// Shorten an edge inside component A only.
	ng, eff, err := graph.Apply(g, &graph.Delta{SetWeights: []graph.EdgeUpdate{{U: 0, V: 1, W: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	repaired, dirty, _, err := Repair(ng, old, eff.Changes, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if old.Fingerprint() == repaired.Fingerprint() {
		t.Fatal("weight change did not move the fingerprint; rekey untestable")
	}
	for v := 4; v < 8; v++ {
		if dirty[v] {
			t.Fatalf("component-B node %d dirty after component-A change", v)
		}
	}

	before := c.FullStats()
	anyDirty := func(nodes []graph.NodeID) bool {
		for _, v := range nodes {
			if dirty[v] {
				return true
			}
		}
		return false
	}
	migrated, droppedN := c.Rekey(old.Fingerprint(), repaired, anyDirty)
	if migrated != 2 || droppedN != 1 {
		t.Fatalf("migrated %d dropped %d, want 2/1", migrated, droppedN)
	}
	after := c.FullStats()
	if after.Evictions != before.Evictions+1 {
		t.Fatalf("evictions %d -> %d, want exactly one more", before.Evictions, after.Evictions)
	}
	if after.Size != 2 {
		t.Fatalf("size %d after rekey, want 2", after.Size)
	}

	// Component B lookups hit the migrated entries under the new index.
	h0 := after.Hits
	gotB := c.BoundsToSet(repaired, catB)
	gotFB := c.BoundsFromSet(repaired, catB)
	if s := c.FullStats(); s.Hits != h0+2 {
		t.Fatalf("migrated entries did not hit: hits %d -> %d", h0, s.Hits)
	}
	// The migrated tables must be rebound to the repaired index (not the
	// old one) and agree with a from-scratch build at every node.
	if gotB == bB || gotFB == fB {
		t.Fatal("rekey returned the old binding instead of a rebound clone")
	}
	freshB := repaired.BoundsToSet(catB)
	freshFB := repaired.BoundsFromSet(catB)
	for v := graph.NodeID(0); v < 8; v++ {
		if gotB.LowerBound(v) != freshB.LowerBound(v) {
			t.Fatalf("migrated Bounds diverges at node %d", v)
		}
		if gotFB.LowerBound(v) != freshFB.LowerBound(v) {
			t.Fatalf("migrated FromBounds diverges at node %d", v)
		}
	}

	// Component A was dropped: next lookup misses and rebuilds.
	m0 := c.FullStats().Misses
	gotA := c.BoundsToSet(repaired, catA)
	if s := c.FullStats(); s.Misses != m0+1 {
		t.Fatal("dropped entry still resident")
	}
	freshA := repaired.BoundsToSet(catA)
	for v := graph.NodeID(0); v < 8; v++ {
		if gotA.LowerBound(v) != freshA.LowerBound(v) {
			t.Fatalf("rebuilt Bounds diverges at node %d", v)
		}
	}
	// The old entry object is untouched — in-flight queries on the old
	// epoch keep a consistent view.
	if bA.ix != old {
		t.Fatal("old-epoch Bounds was mutated by Rekey")
	}
}

// TestCacheRekeySameFingerprintDropOnly pins the POI-only-delta case: a
// rekey between identical fingerprints migrates nothing (entries are
// already correctly keyed) but still sweeps out the entries the drop
// predicate flags.
func TestCacheRekeySameFingerprintDropOnly(t *testing.T) {
	g := twoComponents(t)
	ix, err := BuildWithLandmarks(g, []graph.NodeID{0})
	if err != nil {
		t.Fatal(err)
	}
	c := NewSetBoundsCache(4)
	keep := []graph.NodeID{1}
	toss := []graph.NodeID{2, 3}
	c.BoundsToSet(ix, keep)
	c.BoundsToSet(ix, toss)
	m, d := c.Rekey(ix.Fingerprint(), ix, func(nodes []graph.NodeID) bool {
		return len(nodes) == 2
	})
	if m != 0 || d != 1 {
		t.Fatalf("same-fingerprint rekey: migrated %d dropped %d, want 0/1", m, d)
	}
	if s := c.FullStats(); s.Size != 1 || s.Evictions != 1 {
		t.Fatalf("stats after drop-only sweep: %+v", s)
	}
	h0 := c.FullStats().Hits
	c.BoundsToSet(ix, keep)
	if c.FullStats().Hits != h0+1 {
		t.Fatal("surviving entry stopped hitting")
	}
}

// TestCacheRekeyCollisionLoserEvicted covers the migration race: if the
// new fingerprint already holds an entry under the same key (a concurrent
// rebuild populated it), the stale clean entry is dropped, not migrated
// over it.
func TestCacheRekeyCollisionLoserEvicted(t *testing.T) {
	g := twoComponents(t)
	old, err := BuildWithLandmarks(g, []graph.NodeID{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	ng, eff, err := graph.Apply(g, &graph.Delta{SetWeights: []graph.EdgeUpdate{{U: 4, V: 5, W: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	repaired, _, _, err := Repair(ng, old, eff.Changes, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	c := NewSetBoundsCache(8)
	cat := []graph.NodeID{1, 3} // component A: clean under this delta
	c.BoundsToSet(old, cat)
	winner := c.BoundsToSet(repaired, cat) // new-generation entry already present
	before := c.FullStats()
	m, d := c.Rekey(old.Fingerprint(), repaired, nil)
	if m != 0 || d != 1 {
		t.Fatalf("migrated %d dropped %d, want 0/1", m, d)
	}
	if s := c.FullStats(); s.Evictions != before.Evictions+1 || s.Size != 1 {
		t.Fatalf("stats after collision rekey: %+v", s)
	}
	if got := c.BoundsToSet(repaired, cat); got != winner {
		t.Fatal("collision winner displaced by stale entry")
	}
}
