package fault

import (
	"errors"
	"testing"
	"time"
)

func TestNilRegistryIsNoop(t *testing.T) {
	var r *Registry
	if err := r.Hit(GraphRead); err != nil {
		t.Fatalf("nil registry injected: %v", err)
	}
	if r.Hits(GraphRead) != 0 || r.Fired() != nil {
		t.Fatal("nil registry recorded state")
	}
	r.Add(Rule{Point: GraphRead}) // must not panic
}

func TestRuleFiresAtNthForCount(t *testing.T) {
	r := New().Add(Rule{Point: PoolWorker, Nth: 3, Count: 2, Kind: KindError})
	var errs []error
	for i := 0; i < 6; i++ {
		errs = append(errs, r.Hit(PoolWorker))
	}
	for i, err := range errs {
		wantErr := i == 2 || i == 3 // hits 3 and 4
		if (err != nil) != wantErr {
			t.Fatalf("hit %d: err=%v, want firing=%v", i+1, err, wantErr)
		}
		if err != nil && !errors.Is(err, ErrInjected) {
			t.Fatalf("hit %d: error %v does not wrap ErrInjected", i+1, err)
		}
	}
	fired := r.Fired()
	if len(fired) != 2 || fired[0].Hit != 3 || fired[1].Hit != 4 {
		t.Fatalf("fired events %+v, want hits 3 and 4", fired)
	}
	if r.Hits(PoolWorker) != 6 {
		t.Fatalf("Hits = %d, want 6", r.Hits(PoolWorker))
	}
}

func TestZeroValuesMeanFirstHitOnce(t *testing.T) {
	r := New().Add(Rule{Point: CacheInsert})
	if err := r.Hit(CacheInsert); err == nil {
		t.Fatal("zero-value rule did not fire on first hit")
	}
	if err := r.Hit(CacheInsert); err != nil {
		t.Fatalf("zero-value rule fired twice: %v", err)
	}
}

func TestTransientWrapsInjected(t *testing.T) {
	r := New().Add(Rule{Point: BatchWorker, Kind: KindTransient})
	err := r.Hit(BatchWorker)
	if !errors.Is(err, ErrTransient) || !errors.Is(err, ErrInjected) {
		t.Fatalf("transient error %v must wrap both sentinels", err)
	}
	plain := New().Add(Rule{Point: BatchWorker, Kind: KindError}).Hit(BatchWorker)
	if errors.Is(plain, ErrTransient) {
		t.Fatalf("plain error %v must not wrap ErrTransient", plain)
	}
}

func TestPanicKind(t *testing.T) {
	r := New().Add(Rule{Point: PoolWorker, Kind: KindPanic})
	defer func() {
		rec := recover()
		if rec == nil {
			t.Fatal("KindPanic did not panic")
		}
		if !IsInjectedPanic(rec) {
			t.Fatalf("recovered %v is not an injected panic", rec)
		}
		if IsInjectedPanic("unrelated") {
			t.Fatal("IsInjectedPanic matched a foreign value")
		}
	}()
	_ = r.Hit(PoolWorker)
}

func TestLatencyKindSleepsAndReturnsNil(t *testing.T) {
	r := New().Add(Rule{Point: SubspaceSearch, Kind: KindLatency, Delay: time.Millisecond})
	start := time.Now()
	if err := r.Hit(SubspaceSearch); err != nil {
		t.Fatalf("latency rule returned error: %v", err)
	}
	if time.Since(start) < time.Millisecond {
		t.Fatal("latency rule did not sleep")
	}
}

func TestErrOverride(t *testing.T) {
	sentinel := errors.New("custom")
	r := New().Add(Rule{Point: GraphRead, Err: sentinel})
	if err := r.Hit(GraphRead); !errors.Is(err, sentinel) {
		t.Fatalf("override not honored: %v", err)
	}
}

func TestPlanIsDeterministicAndSafe(t *testing.T) {
	a := Plan(42, PlanConfig{})
	b := Plan(42, PlanConfig{})
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("plans differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rule %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	if c := Plan(43, PlanConfig{}); len(c) == len(a) {
		same := true
		for i := range c {
			if c[i] != a[i] {
				same = false
			}
		}
		if same {
			t.Fatal("different seeds produced identical plans")
		}
	}
	// Panics may only land on panic-safe points across many seeds.
	for seed := int64(0); seed < 200; seed++ {
		for _, ru := range Plan(seed, PlanConfig{Rules: 6}) {
			if ru.Kind == KindPanic && !PanicSafePoints[ru.Point] {
				t.Fatalf("seed %d: panic rule at unsafe point %s", seed, ru.Point)
			}
			if ru.Nth < 1 || ru.Count < 1 {
				t.Fatalf("seed %d: degenerate rule %+v", seed, ru)
			}
		}
	}
}

func TestInstallAndGlobalHit(t *testing.T) {
	defer Install(nil)
	if Enabled() {
		t.Fatal("injection enabled before Install")
	}
	if err := Hit(GraphRead); err != nil {
		t.Fatalf("disabled global Hit injected: %v", err)
	}
	r := New().Add(Rule{Point: GraphRead, Nth: 2})
	Install(r)
	if !Enabled() || Active() != r {
		t.Fatal("Install did not take")
	}
	if err := Hit(GraphRead); err != nil {
		t.Fatalf("hit 1 fired early: %v", err)
	}
	if err := Hit(GraphRead); err == nil {
		t.Fatal("hit 2 did not fire")
	}
	Install(nil)
	if Enabled() {
		t.Fatal("Install(nil) did not disable")
	}
}
