package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"kpj"
	"kpj/internal/fault"
	"kpj/internal/gen"
	"kpj/internal/graph"
	"kpj/internal/leaktest"
	"kpj/internal/wal"
)

// This file is the durability suite: the seeded crash-recovery harness
// (churn schedule, WAL-append crash, torn tail, restart, replay, then
// state equality against an uninterrupted in-memory chain across every
// engine), plus the endpoint-level contracts the routing tier depends
// on — epoch headers, fencing, 413s, snapshot/resync, and readyz gating
// during replay.

// allEngines is every named algorithm the server exposes; recovered
// state must answer identically on all of them.
var allEngines = []string{"IterBoundI", "IterBoundP", "IterBound", "BestFirst", "DA", "DA-SPT"}

// churnWorld builds one seeded random city in both graph representations
// (kpj for the server, internal/graph for gen.Churn) from the same
// DIMACS bytes, with two POI categories present in both views.
func churnWorld(t testing.TB, seed int) (*kpj.Graph, *graph.Graph) {
	t.Helper()
	const w, h = 5, 4
	n := w * h
	rng := rand.New(rand.NewSource(int64(40_000 + seed)))
	id := func(x, y int) int64 { return int64(y*w + x) }
	var edges [][3]int64
	add := func(u, v int64) {
		wt := int64(5 + rng.Intn(20))
		edges = append(edges, [3]int64{u, v, wt}, [3]int64{v, u, wt})
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				add(id(x, y), id(x+1, y))
			}
			if y+1 < h {
				add(id(x, y), id(x, y+1))
			}
		}
	}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "p sp %d %d\n", n, len(edges))
	for _, e := range edges {
		fmt.Fprintf(&buf, "a %d %d %d\n", e[0]+1, e[1]+1, e[2])
	}
	g, err := kpj.ReadGraph(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadGraph: %v", err)
	}
	og, err := graph.ReadGr(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadGr: %v", err)
	}
	for _, c := range []struct {
		name  string
		nodes []int64
	}{
		{"poi", []int64{2, 9, 17}},
		{"depot", []int64{0, 19}},
	} {
		kn := make([]kpj.NodeID, len(c.nodes))
		on := make([]graph.NodeID, len(c.nodes))
		for i, v := range c.nodes {
			kn[i], on[i] = kpj.NodeID(v), graph.NodeID(v)
		}
		if err := g.AddCategory(c.name, kn); err != nil {
			t.Fatal(err)
		}
		if err := og.AddCategory(c.name, on); err != nil {
			t.Fatal(err)
		}
	}
	return g, og
}

func deltaJSON(t testing.TB, d *graph.Delta) string {
	t.Helper()
	b, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// mustUpdate posts one delta and requires the epoch to advance.
func mustUpdate(t testing.TB, s *Server, d *graph.Delta) {
	t.Helper()
	rec, body := postUpdate(t, s, deltaJSON(t, d))
	if rec.Code != http.StatusOK {
		t.Fatalf("update: %d %s (delta %s)", rec.Code, body, deltaJSON(t, d))
	}
}

// engineAnswers runs one query across every engine and renders each
// response (status, epoch, fingerprint, paths) into a comparable string.
func engineAnswers(t *testing.T, s *Server, query string) map[string]string {
	t.Helper()
	out := make(map[string]string, len(allEngines))
	for _, alg := range allEngines {
		rec, body := get(t, s, query+"&alg="+alg)
		var q struct {
			Paths       []PathJSON `json:"paths"`
			Epoch       uint64     `json:"epoch"`
			Fingerprint string     `json:"fingerprint"`
		}
		if rec.Code == http.StatusOK {
			if err := json.Unmarshal(body, &q); err != nil {
				t.Fatalf("%s %s: %v", alg, query, err)
			}
		}
		paths, err := json.Marshal(q.Paths)
		if err != nil {
			t.Fatal(err)
		}
		out[alg] = fmt.Sprintf("%d epoch=%d fp=%s %s", rec.Code, q.Epoch, q.Fingerprint, paths)
	}
	return out
}

var crashQueries = []string{
	"/query?source=0&category=poi&k=4",
	"/query?source=1&target=17&k=3",
	"/query?source=3&category=depot&k=2",
}

// assertSameState requires two servers to be indistinguishable: same
// epoch, same index fingerprint, and identical answers from every
// engine on every probe query.
func assertSameState(t *testing.T, phase string, want, got *Server) {
	t.Helper()
	if we, ge := want.Epoch(), got.Epoch(); we != ge {
		t.Fatalf("%s: epoch %d, want %d", phase, ge, we)
	}
	if wf, gf := fingerprint(want.snapshot()), fingerprint(got.snapshot()); wf != gf {
		t.Fatalf("%s: fingerprint %s, want %s", phase, gf, wf)
	}
	for _, q := range crashQueries {
		wa, ga := engineAnswers(t, want, q), engineAnswers(t, got, q)
		for _, alg := range allEngines {
			if wa[alg] != ga[alg] {
				t.Fatalf("%s: %s %s diverged:\n  recovered: %s\n  oracle:    %s", phase, q, alg, ga[alg], wa[alg])
			}
		}
	}
}

// tearTail simulates the torn final write of a crash: seeded junk bytes
// appended to the active WAL segment, which recovery must drop.
func tearTail(t *testing.T, dir string, seed int) {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no wal segment in %s (%v)", dir, err)
	}
	sort.Strings(segs)
	f, err := os.OpenFile(segs[len(segs)-1], os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(int64(7_000 + seed)))
	junk := make([]byte, 1+rng.Intn(48))
	rng.Read(junk)
	if _, err := f.Write(junk); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func readCheckpointFile(t *testing.T, path string) (*kpj.Graph, *kpj.Index) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, ix, err := kpj.ReadFlat(f)
	if err != nil {
		t.Fatalf("checkpoint %s: %v", path, err)
	}
	return g, ix
}

// TestCrashRecoveryChurn is the crash harness: 20 seeded churn schedules,
// each crashed at a seed-chosen point by a WAL append fault plus a torn
// tail, recovered from checkpoint + log suffix, and required to be
// indistinguishable — epoch, fingerprint, and every engine's answers —
// from an uninterrupted in-memory chain. The oracle runs at parallelism
// 1 and the recovered server at parallelism 4, so equality also
// re-checks the engines' parallelism invariance over churned graphs.
func TestCrashRecoveryChurn(t *testing.T) {
	for seed := 0; seed < 20; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runCrashSeed(t, seed)
		})
	}
}

func runCrashSeed(t *testing.T, seed int) {
	g, og := churnWorld(t, seed)
	ixMem, err := kpj.BuildIndex(g, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	ixWAL, err := kpj.BuildIndex(g, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	schedule, _, err := gen.Churn(og, gen.ChurnConfig{Steps: 6, Ops: 5, Seed: int64(1_000 + seed)})
	if err != nil {
		t.Fatal(err)
	}

	mem := New(g, ixMem, WithLogf(t.Logf), WithParallelism(1))

	dir := t.TempDir()
	lg, rec0, err := wal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec0.CheckpointPath != "" || len(rec0.Records) != 0 {
		t.Fatalf("fresh dir recovered state: %+v", rec0)
	}
	dsrv := New(g, ixWAL, WithWAL(lg, 3), WithLogf(t.Logf), WithParallelism(4))
	if err := dsrv.Recover(rec0); err != nil {
		t.Fatal(err)
	}

	// Phase 1: both chains advance in lockstep until the crash point.
	crashAt := seed % len(schedule)
	for i := 0; i < crashAt; i++ {
		mustUpdate(t, mem, schedule[i])
		mustUpdate(t, dsrv, schedule[i])
	}

	// The crash: the next update's WAL append fails after the delta
	// applied in memory. Durable-before-observable means the epoch must
	// NOT move — the caller saw 500, so recovery must not produce it.
	fault.Install(fault.New().Add(fault.Rule{Point: fault.WALAppend, Nth: 1, Count: 1, Kind: fault.KindError}))
	rec, body := postUpdate(t, dsrv, deltaJSON(t, schedule[crashAt]))
	fault.Install(nil)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("crashed update: %d %s", rec.Code, body)
	}
	if kind := rec.Header().Get("X-Kpj-Error-Kind"); kind != kindWAL {
		t.Fatalf("crashed update kind = %q, want %q", kind, kindWAL)
	}
	if got := dsrv.Epoch(); got != uint64(crashAt) {
		t.Fatalf("failed append moved the epoch to %d", got)
	}

	// The process dies: close the log and tear its tail.
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	tearTail(t, dir, seed)

	// Restart: open the directory, load the newest checkpoint (or the
	// seed state when none was reached), and replay the suffix.
	lg2, rec2, err := wal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer lg2.Close()
	if rec2.TruncatedBytes == 0 {
		t.Fatal("torn tail was not truncated")
	}
	if got := rec2.LastEpoch(); got != uint64(crashAt) {
		t.Fatalf("durable epoch after crash = %d, want %d", got, crashAt)
	}
	rg, rix := g, ixWAL
	if rec2.CheckpointPath != "" {
		rg, rix = readCheckpointFile(t, rec2.CheckpointPath)
	}
	rsrv := New(rg, rix, WithWAL(lg2, 3), WithLogf(t.Logf), WithParallelism(4))
	if ready, why := rsrv.readiness(); ready {
		t.Fatalf("ready before recovery (%s)", why)
	}
	if err := rsrv.Recover(rec2); err != nil {
		t.Fatal(err)
	}
	if ready, why := rsrv.readiness(); !ready {
		t.Fatalf("not ready after recovery: %s", why)
	}
	assertSameState(t, "post-crash", mem, rsrv)

	// Phase 2: the chain continues on the recovered server; both finish
	// the schedule and must still agree everywhere.
	for i := crashAt; i < len(schedule); i++ {
		mustUpdate(t, mem, schedule[i])
		mustUpdate(t, rsrv, schedule[i])
	}
	if got := rsrv.Epoch(); got != uint64(len(schedule)) {
		t.Fatalf("final epoch = %d, want %d", got, len(schedule))
	}
	assertSameState(t, "final", mem, rsrv)
}

// TestRecoveryGatesReadyz: a WAL-configured server reports not-ready
// (503, "recovering") until Recover completes, so a router never routes
// to a replica that has not proven its chain.
func TestRecoveryGatesReadyz(t *testing.T) {
	dir := t.TempDir()
	lg, rec0, err := wal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lg.Close() })
	s, _ := testServer(t, WithWAL(lg, 0), WithLogf(t.Logf))
	rec, body := get(t, s, "/readyz")
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(string(body), "recovering") {
		t.Fatalf("readyz during recovery: %d %s", rec.Code, body)
	}
	if !s.Recovering() {
		t.Fatal("Recovering() = false before Recover")
	}
	if err := s.Recover(rec0); err != nil {
		t.Fatal(err)
	}
	if rec, body = get(t, s, "/readyz"); rec.Code != http.StatusOK {
		t.Fatalf("readyz after recovery: %d %s", rec.Code, body)
	}
}

// TestWALFsyncFaultKeepsEpoch: a failed fsync during append answers 500
// kind "wal", keeps the epoch, and the log stays appendable — the torn
// frame is rolled back, so the retry lands cleanly.
func TestWALFsyncFaultKeepsEpoch(t *testing.T) {
	defer leaktest.Check(t)()
	dir := t.TempDir()
	lg, rec0, err := wal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lg.Close() })
	s, _ := testServer(t, WithWAL(lg, 0), WithLogf(t.Logf))
	if err := s.Recover(rec0); err != nil {
		t.Fatal(err)
	}
	installFaults(t, fault.New().Add(fault.Rule{Point: fault.WALFsync, Nth: 1, Count: 1, Kind: fault.KindError}))

	delta := `{"setWeights":[{"u":0,"v":1,"w":4}]}`
	rec, body := postUpdate(t, s, delta)
	if rec.Code != http.StatusInternalServerError || rec.Header().Get("X-Kpj-Error-Kind") != kindWAL {
		t.Fatalf("faulted append: %d kind=%q %s", rec.Code, rec.Header().Get("X-Kpj-Error-Kind"), body)
	}
	if got := s.Epoch(); got != 0 {
		t.Fatalf("failed append moved the epoch to %d", got)
	}
	if rec, body = postUpdate(t, s, delta); rec.Code != http.StatusOK {
		t.Fatalf("retry: %d %s", rec.Code, body)
	}
	if got, want := s.Epoch(), uint64(1); got != want {
		t.Fatalf("epoch after retry = %d", got)
	}
	if got := lg.LastEpoch(); got != 1 {
		t.Fatalf("durable epoch = %d, want 1", got)
	}
}

// TestUpdateOversized: a body over WithMaxUpdateBytes is a typed 413,
// not a misleading bad-JSON 400, and does not move the epoch.
func TestUpdateOversized(t *testing.T) {
	s, _ := testServer(t, WithLogf(t.Logf), WithMaxUpdateBytes(48))
	rec, body := postUpdate(t, s, `{"setWeights":[{"u":0,"v":1,"w":4},{"u":1,"v":0,"w":4}]}`)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized update: %d %s", rec.Code, body)
	}
	var e struct {
		Error string `json:"error"`
		Kind  string `json:"kind"`
	}
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatal(err)
	}
	if e.Kind != kindTooLarge || e.Error == "" {
		t.Fatalf("413 body = %s", body)
	}
	if got := rec.Header().Get("X-Kpj-Error-Kind"); got != kindTooLarge {
		t.Fatalf("413 kind header = %q", got)
	}
	if got := s.Epoch(); got != 0 {
		t.Fatalf("oversized update moved the epoch to %d", got)
	}
	// Under the cap the same endpoint still applies deltas.
	if rec, body = postUpdate(t, s, `{"setWeights":[{"u":0,"v":1,"w":4}]}`); rec.Code != http.StatusOK {
		t.Fatalf("in-bounds update: %d %s", rec.Code, body)
	}
}

func postUpdateFenced(t *testing.T, s *Server, body string, headers map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/update", strings.NewReader(body))
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

// TestUpdateFencing drives the X-Kpj-Expect-* precondition headers: a
// matching fence applies, a stale or diverged fence is a 409 carrying
// the current generation, and malformed fences are 400s.
func TestUpdateFencing(t *testing.T) {
	s, _ := testServer(t, WithLogf(t.Logf))
	delta := `{"setWeights":[{"u":0,"v":1,"w":4}]}`
	fp0 := fingerprint(s.snapshot())
	if fp0 == "" {
		t.Fatal("testServer should be indexed")
	}

	rec := postUpdateFenced(t, s, delta, map[string]string{
		"X-Kpj-Expect-Epoch": "0", "X-Kpj-Expect-Fingerprint": fp0,
	})
	if rec.Code != http.StatusOK || rec.Header().Get("X-Kpj-Epoch") != "1" {
		t.Fatalf("fenced update: %d epoch=%q %s", rec.Code, rec.Header().Get("X-Kpj-Epoch"), rec.Body.String())
	}

	// Replaying the same fence is stale: 409, epoch unchanged, and the
	// response names the current generation so the caller can decide.
	rec = postUpdateFenced(t, s, delta, map[string]string{
		"X-Kpj-Expect-Epoch": "0", "X-Kpj-Expect-Fingerprint": fp0,
	})
	if rec.Code != http.StatusConflict || rec.Header().Get("X-Kpj-Error-Kind") != kindEpochConflict {
		t.Fatalf("stale fence: %d kind=%q", rec.Code, rec.Header().Get("X-Kpj-Error-Kind"))
	}
	if rec.Header().Get("X-Kpj-Epoch") != "1" {
		t.Fatalf("409 epoch header = %q, want 1", rec.Header().Get("X-Kpj-Epoch"))
	}
	if got := s.Epoch(); got != 1 {
		t.Fatalf("stale fence moved the epoch to %d", got)
	}

	// Right epoch, wrong fingerprint: divergence, also a 409.
	rec = postUpdateFenced(t, s, delta, map[string]string{
		"X-Kpj-Expect-Epoch": "1", "X-Kpj-Expect-Fingerprint": "0000000000000000",
	})
	if rec.Code != http.StatusConflict {
		t.Fatalf("diverged fence: %d", rec.Code)
	}

	// Correct fence extends the chain.
	rec = postUpdateFenced(t, s, delta, map[string]string{
		"X-Kpj-Expect-Epoch": "1", "X-Kpj-Expect-Fingerprint": fingerprint(s.snapshot()),
	})
	if rec.Code != http.StatusOK || s.Epoch() != 2 {
		t.Fatalf("fenced update at epoch 1: %d (epoch %d)", rec.Code, s.Epoch())
	}

	// Malformed fences are client errors, not conflicts.
	if rec = postUpdateFenced(t, s, delta, map[string]string{"X-Kpj-Expect-Epoch": "x"}); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad epoch header: %d", rec.Code)
	}
	if rec = postUpdateFenced(t, s, delta, map[string]string{"X-Kpj-Expect-Fingerprint": "abc"}); rec.Code != http.StatusBadRequest {
		t.Fatalf("fingerprint without epoch: %d", rec.Code)
	}
	if got := s.Epoch(); got != 2 {
		t.Fatalf("malformed fences moved the epoch to %d", got)
	}
}

// TestEpochHeadersOnResponses: every query and update response — success
// or error — carries X-Kpj-Epoch (and X-Kpj-Fingerprint when indexed),
// so the routing tier can detect divergence without parsing bodies.
func TestEpochHeadersOnResponses(t *testing.T) {
	s, _ := testServer(t, WithLogf(t.Logf))
	rec, _ := get(t, s, "/query?source=0&target=1&k=1")
	if rec.Header().Get("X-Kpj-Epoch") != "0" || len(rec.Header().Get("X-Kpj-Fingerprint")) != 16 {
		t.Fatalf("query headers: epoch=%q fp=%q", rec.Header().Get("X-Kpj-Epoch"), rec.Header().Get("X-Kpj-Fingerprint"))
	}
	rec, body := postUpdate(t, s, `{"setWeights":[{"u":0,"v":1,"w":4}]}`)
	if rec.Code != http.StatusOK || rec.Header().Get("X-Kpj-Epoch") != "1" {
		t.Fatalf("update headers: %d epoch=%q %s", rec.Code, rec.Header().Get("X-Kpj-Epoch"), body)
	}
	// Error responses are stamped too: the epoch is known before parsing.
	rec, _ = get(t, s, "/query?source=0&target=1&k=1&alg=nope")
	if rec.Code != http.StatusBadRequest || rec.Header().Get("X-Kpj-Epoch") != "1" {
		t.Fatalf("error query headers: %d epoch=%q", rec.Code, rec.Header().Get("X-Kpj-Epoch"))
	}
}

// TestSnapshotResyncDurable walks the router's readmission path between
// two real servers: GET /snapshot from a replica two epochs ahead, POST
// /resync into a WAL-backed replica at epoch 0, which must checkpoint
// before publishing and then survive a restart at the resynced epoch.
// Fencing holds throughout: a replayed or stale snapshot is a 409.
func TestSnapshotResyncDurable(t *testing.T) {
	a, _ := testServer(t, WithLogf(t.Logf))
	for _, d := range []string{
		`{"setWeights":[{"u":0,"v":1,"w":4}]}`,
		`{"setWeights":[{"u":0,"v":6,"w":7}]}`,
	} {
		if rec, body := postUpdate(t, a, d); rec.Code != http.StatusOK {
			t.Fatalf("seed update: %d %s", rec.Code, body)
		}
	}
	rec, snap := get(t, a, "/snapshot")
	if rec.Code != http.StatusOK || rec.Header().Get("X-Kpj-Epoch") != "2" {
		t.Fatalf("snapshot: %d epoch=%q", rec.Code, rec.Header().Get("X-Kpj-Epoch"))
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("snapshot content-type %q", ct)
	}

	dir := t.TempDir()
	lg, rec0, err := wal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := testServer(t, WithWAL(lg, 0), WithLogf(t.Logf))
	if err := b.Recover(rec0); err != nil {
		t.Fatal(err)
	}

	resync := func(epoch string, body []byte) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPost, "/resync", bytes.NewReader(body))
		if epoch != "" {
			req.Header.Set("X-Kpj-Epoch", epoch)
		}
		w := httptest.NewRecorder()
		b.ServeHTTP(w, req)
		return w
	}

	if w := resync("", snap); w.Code != http.StatusBadRequest {
		t.Fatalf("resync without epoch header: %d", w.Code)
	}
	if w := resync("5", []byte("garbage")); w.Code != http.StatusBadRequest {
		t.Fatalf("resync with garbage body: %d", w.Code)
	}
	w := resync("2", snap)
	if w.Code != http.StatusOK || b.Epoch() != 2 {
		t.Fatalf("resync: %d %s (epoch %d)", w.Code, w.Body.String(), b.Epoch())
	}
	if fa, fb := fingerprint(a.snapshot()), fingerprint(b.snapshot()); fa != fb {
		t.Fatalf("post-resync fingerprint %s, source %s", fb, fa)
	}
	for _, q := range []string{"/query?source=0&target=1&k=2", "/query?source=0&category=hotel&k=3"} {
		wa, wb := engineAnswers(t, a, q), engineAnswers(t, b, q)
		for _, alg := range allEngines {
			if wa[alg] != wb[alg] {
				t.Fatalf("%s %s: resynced replica diverged:\n  a: %s\n  b: %s", q, alg, wa[alg], wb[alg])
			}
		}
	}
	// Replaying the snapshot cannot rewind or re-apply: epoch fencing.
	if w := resync("2", snap); w.Code != http.StatusConflict || w.Header().Get("X-Kpj-Error-Kind") != kindEpochConflict {
		t.Fatalf("replayed resync: %d kind=%q", w.Code, w.Header().Get("X-Kpj-Error-Kind"))
	}

	// The resync checkpointed before publishing: a restart recovers to
	// the resynced epoch with zero records to replay.
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	lg2, rec2, err := wal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer lg2.Close()
	if rec2.CheckpointEpoch != 2 || len(rec2.Records) != 0 {
		t.Fatalf("post-resync recovery: checkpoint epoch %d, %d records", rec2.CheckpointEpoch, len(rec2.Records))
	}
	rg, rix := readCheckpointFile(t, rec2.CheckpointPath)
	b2 := New(rg, rix, WithWAL(lg2, 0), WithLogf(t.Logf))
	if err := b2.Recover(rec2); err != nil {
		t.Fatal(err)
	}
	if b2.Epoch() != 2 || fingerprint(b2.snapshot()) != fingerprint(a.snapshot()) {
		t.Fatalf("restarted replica: epoch %d fp %s", b2.Epoch(), fingerprint(b2.snapshot()))
	}
}

// TestReloadRacingUpdateEpochNeverRegresses races SIGHUP-style index
// reloads against a stream of live updates on a WAL-backed server. The
// contract (DESIGN.md §15): both are epoch bumps serialized under the
// update mutex, so an observer polling the epoch must see a strictly
// monotone sequence, every operation must succeed, and a crash-free
// restart must recover to the exact final epoch. The update stream
// conserves the graph's edge-weight sum so the on-disk index file stays
// loadable against every intermediate graph generation.
func TestReloadRacingUpdateEpochNeverRegresses(t *testing.T) {
	defer leaktest.Check(t)()
	dir := t.TempDir()
	lg, rec0, err := wal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s, g := testServer(t, WithWAL(lg, 4), WithLogf(t.Logf))
	if err := s.Recover(rec0); err != nil {
		t.Fatal(err)
	}

	ix2, err := kpj.BuildIndex(g, 3, 99)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "landmarks.kpx")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix2.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	const rounds = 16
	stop := make(chan struct{})
	errs := make(chan error, 8)
	var observer, updater sync.WaitGroup

	// The observer: the serving epoch must never be seen going backward,
	// no matter how reload and update epoch bumps interleave.
	observer.Add(1)
	go func() {
		defer observer.Done()
		var last uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			e := s.Epoch()
			if e < last {
				errs <- fmt.Errorf("epoch regressed: %d after %d", e, last)
				return
			}
			last = e
		}
	}()

	// The updater: weight pairs whose sum is conserved, so (n, m, wsum)
	// — the index file's graph fingerprint — is invariant and concurrent
	// reloads keep validating.
	updater.Add(1)
	go func() {
		defer updater.Done()
		for i := 1; i <= rounds; i++ {
			w1, w2 := 10, 10
			if i%2 == 1 {
				w1, w2 = 4, 16
			}
			rec, body := postUpdate(t, s, fmt.Sprintf(`{"setWeights":[{"u":0,"v":1,"w":%d},{"u":1,"v":0,"w":%d}]}`, w1, w2))
			if rec.Code != http.StatusOK {
				errs <- fmt.Errorf("update %d: %d %s", i, rec.Code, body)
				return
			}
		}
	}()

	// The reloader (the SIGHUP path), racing the update stream.
	for i := 0; i < rounds; i++ {
		if err := s.ReloadIndex(path); err != nil {
			t.Fatalf("reload %d: %v", i, err)
		}
	}
	updater.Wait()
	close(stop)
	observer.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	final := s.Epoch()
	if final != 2*rounds {
		t.Fatalf("final epoch = %d, want %d (%d updates + %d reloads)", final, 2*rounds, rounds, rounds)
	}

	// Crash-free restart: checkpoints (every reload, plus the periodic
	// policy) and the record suffix must reproduce the exact final state.
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	lg2, rec2, err := wal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer lg2.Close()
	if rec2.CheckpointPath == "" {
		t.Fatal("no checkpoint after reload+update run")
	}
	rg, rix := readCheckpointFile(t, rec2.CheckpointPath)
	s2 := New(rg, rix, WithWAL(lg2, 4), WithLogf(t.Logf))
	if err := s2.Recover(rec2); err != nil {
		t.Fatal(err)
	}
	if s2.Epoch() != final || fingerprint(s2.snapshot()) != fingerprint(s.snapshot()) {
		t.Fatalf("restart: epoch %d fp %s, live %d fp %s",
			s2.Epoch(), fingerprint(s2.snapshot()), final, fingerprint(s.snapshot()))
	}
}
