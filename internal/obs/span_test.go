package obs

import (
	"strings"
	"testing"
	"time"
)

// TestSpansRecord: spans carry name, iteration, payload, and a
// non-negative monotone timeline.
func TestSpansRecord(t *testing.T) {
	s := NewSpans()
	end := s.Start(PhaseLBTables, 0)
	time.Sleep(time.Millisecond)
	end(17)
	end = s.Start(PhaseRound, 3)
	end(8)

	spans, dropped := s.Snapshot()
	if dropped != 0 {
		t.Errorf("dropped = %d, want 0", dropped)
	}
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Name != PhaseLBTables || spans[0].Val != 17 {
		t.Errorf("span 0 = %+v", spans[0])
	}
	if spans[0].DurMicros < 500 {
		t.Errorf("span 0 duration %dµs, want ≥ 500µs", spans[0].DurMicros)
	}
	if spans[1].Name != PhaseRound || spans[1].N != 3 || spans[1].Val != 8 {
		t.Errorf("span 1 = %+v", spans[1])
	}
	if spans[1].StartMicros < spans[0].StartMicros {
		t.Errorf("span starts out of order: %d before %d", spans[1].StartMicros, spans[0].StartMicros)
	}

	var b strings.Builder
	if err := s.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, frag := range []string{`"name":"lb_tables"`, `"val":17`, `"n":3`, `"dropped":0`} {
		if !strings.Contains(out, frag) {
			t.Errorf("JSON %q missing %q", out, frag)
		}
	}
}

// TestSpansNil: a nil recorder is fully inert.
func TestSpansNil(t *testing.T) {
	var s *Spans
	end := s.Start(PhaseInitial, 0)
	end(1)
	if spans, dropped := s.Snapshot(); spans != nil || dropped != 0 {
		t.Error("nil recorder must report nothing")
	}
	var b strings.Builder
	if err := s.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != "{\"spans\":[],\"dropped\":0}\n" {
		t.Errorf("nil recorder JSON = %q", b.String())
	}
}

// TestSpansCap: the recorder drops spans beyond maxSpans instead of
// growing without bound, and counts the drops.
func TestSpansCap(t *testing.T) {
	s := NewSpans()
	for i := 0; i < maxSpans+10; i++ {
		s.Start(PhaseRound, i)(0)
	}
	spans, dropped := s.Snapshot()
	if len(spans) != maxSpans {
		t.Errorf("kept %d spans, want %d", len(spans), maxSpans)
	}
	if dropped != 10 {
		t.Errorf("dropped = %d, want 10", dropped)
	}
}
