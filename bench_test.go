// Benchmarks: one testing.B benchmark per table/figure of the paper's
// evaluation. They exercise the same sweeps as cmd/kpjbench but at a
// reduced, benchmark-friendly scale — use the command for the full tables
// (see EXPERIMENTS.md for recorded results at the default scale).
package kpj_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"kpj/internal/core"
	"kpj/internal/deviation"
	"kpj/internal/experiments"
	"kpj/internal/gen"
	"kpj/internal/graph"
	"kpj/internal/landmark"
	"kpj/internal/sssp"
)

// benchEnv is the shared lazily-built dataset cache for all benchmarks.
var (
	benchOnce sync.Once
	benchE    *experiments.Env
)

func env() *experiments.Env {
	benchOnce.Do(func() {
		benchE = experiments.NewEnv(experiments.Config{
			Scale: 0.08, PerSet: 5, Landmarks: 8, Alpha: 1.1, Seed: 1,
		})
	})
	return benchE
}

// benchQuery runs one algorithm repeatedly over rotating Q3 sources.
func benchQuery(b *testing.B, ds, algo, category string, k int, landmarks int, alpha float64) {
	b.Helper()
	e := env()
	g, err := e.Graph(ds)
	if err != nil {
		b.Fatal(err)
	}
	targets, err := g.Category(category)
	if err != nil {
		b.Fatal(err)
	}
	sets, _, err := e.QuerySets(ds, category)
	if err != nil {
		b.Fatal(err)
	}
	sources := sets[2] // Q3
	fn, wantsIndex := resolveAlgo(b, algo)
	var opt core.Options
	opt.Alpha = alpha
	if wantsIndex {
		ix, err := e.IndexWith(ds, landmarks)
		if err != nil {
			b.Fatal(err)
		}
		opt.Index = ix
	}
	opt.Workspace = core.NewWorkspace(g.NumNodes() + 2)
	// Follow -cpu: `go test -bench ... -cpu 1,4` compares the sequential
	// engine against the 4-worker one on identical queries.
	opt.Parallelism = runtime.GOMAXPROCS(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := core.Query{Sources: []graph.NodeID{sources[i%len(sources)]}, Targets: targets, K: k}
		paths, err := fn(g, q, opt)
		if err != nil {
			b.Fatal(err)
		}
		if len(paths) == 0 {
			b.Fatal("no paths")
		}
	}
}

// deviationAlgos returns the baseline implementations by name.
func deviationAlgos() map[string]core.Func {
	return map[string]core.Func{
		"DA":     deviation.DA,
		"DA-SPT": deviation.DASPT,
	}
}

// resolveAlgo maps a paper algorithm name to its implementation and
// whether it consumes the landmark index.
func resolveAlgo(b *testing.B, name string) (core.Func, bool) {
	b.Helper()
	if fn, ok := core.Algorithms()[name]; ok {
		return fn, name != "IterBoundI-NL"
	}
	if fn, ok := deviationAlgos()[name]; ok {
		return fn, false
	}
	b.Fatalf("unknown algorithm %q", name)
	return nil, false
}

// BenchmarkTable1Datasets measures dataset generation (Table 1 substrate):
// one op generates the scaled SJ road network with nested categories.
func BenchmarkTable1Datasets(b *testing.B) {
	ds, err := gen.ByName("SJ")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g, err := ds.Build(0.2, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := gen.AddNestedCategories(g, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6LandmarkCount sweeps |L| for IterBound_I on CAL (Fig. 6a).
func BenchmarkFig6LandmarkCount(b *testing.B) {
	for _, count := range []int{4, 8, 16, 32} {
		b.Run(fmt.Sprintf("L=%d", count), func(b *testing.B) {
			benchQuery(b, "CAL", "IterBoundI", "Harbor", 20, count, 1.1)
		})
	}
}

// BenchmarkFig6Alpha sweeps α for IterBound_I on CAL (Fig. 6b).
func BenchmarkFig6Alpha(b *testing.B) {
	for _, alpha := range []float64{1.05, 1.1, 1.2, 1.5, 1.8} {
		b.Run(fmt.Sprintf("a=%v", alpha), func(b *testing.B) {
			benchQuery(b, "CAL", "IterBoundI", "Harbor", 20, 8, alpha)
		})
	}
}

// BenchmarkFig7Baselines compares all seven algorithms on CAL, T=Lake,
// k=20 (Fig. 7).
func BenchmarkFig7Baselines(b *testing.B) {
	for _, algo := range experiments.AlgorithmOrder {
		b.Run(algo, func(b *testing.B) {
			benchQuery(b, "CAL", algo, "Lake", 20, 8, 1.1)
		})
	}
}

// BenchmarkFig8KSP compares all seven algorithms on the KSP special case
// (CAL, T=Glacier with one node, Fig. 8).
func BenchmarkFig8KSP(b *testing.B) {
	for _, algo := range experiments.AlgorithmOrder {
		b.Run(algo, func(b *testing.B) {
			benchQuery(b, "CAL", algo, "Glacier", 20, 8, 1.1)
		})
	}
}

// BenchmarkFig9Ours compares the contributed algorithms on SJ, T=T2
// (Fig. 9).
func BenchmarkFig9Ours(b *testing.B) {
	for _, algo := range experiments.OursOrder {
		b.Run(algo, func(b *testing.B) {
			benchQuery(b, "SJ", algo, "T2", 20, 8, 1.1)
		})
	}
}

// BenchmarkFig10DestCount sweeps the destination-category size on COL
// (Fig. 10) for the flagship algorithm and BestFirst.
func BenchmarkFig10DestCount(b *testing.B) {
	for _, cat := range gen.NestedNames {
		for _, algo := range []string{"BestFirst", "IterBoundI"} {
			b.Run(fmt.Sprintf("%s/%s", cat, algo), func(b *testing.B) {
				benchQuery(b, "COL", algo, cat, 20, 8, 1.1)
			})
		}
	}
}

// BenchmarkFig11Percentile measures the distance-distribution sampling
// behind Fig. 11: one op is one full SSSP contributing n observations.
func BenchmarkFig11Percentile(b *testing.B) {
	e := env()
	g, err := e.Graph("SJ")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := graph.NodeID(i % g.NumNodes())
		tree := sssp.Dijkstra(g, graph.Forward, src)
		if tree.Dist[src] != 0 {
			b.Fatal("bad SSSP")
		}
	}
}

// BenchmarkFig12Scalability runs IterBound_I across dataset sizes and k
// values (Fig. 12).
func BenchmarkFig12Scalability(b *testing.B) {
	for _, ds := range []string{"SJ", "CAL", "COL"} {
		b.Run("ds="+ds, func(b *testing.B) {
			benchQuery(b, ds, "IterBoundI", "T2", 20, 8, 1.1)
		})
	}
	for _, k := range []int{10, 50, 100, 200, 500} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			benchQuery(b, "COL", "IterBoundI", "T2", k, 8, 1.1)
		})
	}
}

// BenchmarkIndexBuild measures landmark index construction (|L|=20 on
// COL): 2|L|+1 independent Dijkstras, fanned across GOMAXPROCS workers,
// so `-cpu 1,4` exposes the build's parallel scaling.
func BenchmarkIndexBuild(b *testing.B) {
	e := env()
	g, err := e.Graph("COL")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix, err := landmark.BuildParallel(g, 20, 1, runtime.GOMAXPROCS(0))
		if err != nil {
			b.Fatal(err)
		}
		if ix.Count() != 20 {
			b.Fatalf("got %d landmarks", ix.Count())
		}
	}
}

// BenchmarkFig13GKPJ compares DA-SPT and IterBound_I on category-to-
// category joins (Fig. 13): |S| = 4 random sources, T = T2 on COL.
func BenchmarkFig13GKPJ(b *testing.B) {
	e := env()
	g, err := e.Graph("COL")
	if err != nil {
		b.Fatal(err)
	}
	targets, err := g.Category("T2")
	if err != nil {
		b.Fatal(err)
	}
	n := graph.NodeID(g.NumNodes())
	sources := []graph.NodeID{11, n / 3, 2 * n / 3, n - 7}
	ix, err := e.IndexWith("COL", 8)
	if err != nil {
		b.Fatal(err)
	}
	for name, fn := range map[string]core.Func{
		"DA-SPT":     deviationAlgos()["DA-SPT"],
		"IterBoundI": core.IterBoundSPTI,
	} {
		opt := core.Options{Alpha: 1.1, Workspace: core.NewWorkspace(g.NumNodes() + 2)}
		if name == "IterBoundI" {
			opt.Index = ix
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				q := core.Query{Sources: sources, Targets: targets, K: 20}
				paths, err := fn(g, q, opt)
				if err != nil {
					b.Fatal(err)
				}
				if len(paths) == 0 {
					b.Fatal("no paths")
				}
			}
		})
	}
}
