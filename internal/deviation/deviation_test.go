package deviation_test

import (
	"math/rand"
	"reflect"
	"testing"

	"kpj/internal/bruteforce"
	"kpj/internal/core"
	"kpj/internal/deviation"
	"kpj/internal/graph"
	"kpj/internal/testgraphs"
)

func lengthsOf(paths []core.Path) []graph.Weight {
	out := make([]graph.Weight, len(paths))
	for i, p := range paths {
		out[i] = p.Length
	}
	return out
}

func TestFig1Baselines(t *testing.T) {
	g := testgraphs.Fig1()
	hotels, _ := g.Category(testgraphs.HotelCategory)
	q := core.Query{Sources: []graph.NodeID{testgraphs.V1}, Targets: hotels, K: 5}
	for name, fn := range deviation.Algorithms() {
		t.Run(name, func(t *testing.T) {
			paths, err := fn(g, q, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if got := lengthsOf(paths); !reflect.DeepEqual(got, testgraphs.Fig1TopLengths) {
				t.Fatalf("lengths = %v, want %v", got, testgraphs.Fig1TopLengths)
			}
		})
	}
}

// Example 3.1 of the paper: the first three paths of Q = {v1, "H", 3} are
// (v1,v8,v7), (v1,v3,v6), and a length-7 path.
func TestFig1PaperExample31(t *testing.T) {
	g := testgraphs.Fig1()
	hotels, _ := g.Category(testgraphs.HotelCategory)
	q := core.Query{Sources: []graph.NodeID{testgraphs.V1}, Targets: hotels, K: 3}
	paths, err := deviation.DA(g, q, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 {
		t.Fatalf("got %d paths", len(paths))
	}
	if !reflect.DeepEqual(paths[0].Nodes, []graph.NodeID{testgraphs.V1, testgraphs.V8, testgraphs.V7}) {
		t.Fatalf("P1 = %v", paths[0].Nodes)
	}
	if !reflect.DeepEqual(paths[1].Nodes, []graph.NodeID{testgraphs.V1, testgraphs.V3, testgraphs.V6}) {
		t.Fatalf("P2 = %v", paths[1].Nodes)
	}
	if paths[2].Length != 7 {
		t.Fatalf("P3 length = %d, want 7", paths[2].Length)
	}
}

func TestBaselinesMatchOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(999))
	for trial := 0; trial < 120; trial++ {
		n := 2 + rng.Intn(9)
		g := testgraphs.Random(rng, n, 3, 9, trial%2 == 0)
		targets := testgraphs.RandomCategory(rng, g, "T", 1+rng.Intn(3))
		var sources []graph.NodeID
		if trial%4 == 0 {
			sources = testgraphs.RandomCategory(rng, g, "S", 1+rng.Intn(3))
		} else {
			sources = []graph.NodeID{graph.NodeID(rng.Intn(n))}
		}
		k := 1 + rng.Intn(10)
		q := core.Query{Sources: sources, Targets: targets, K: k}
		want := bruteforce.Lengths(bruteforce.TopK(g, sources, targets, k))
		for name, fn := range deviation.Algorithms() {
			paths, err := fn(g, q, core.Options{})
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, name, err)
			}
			if got := lengthsOf(paths); !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d %s (n=%d k=%d S=%v T=%v):\n got %v\nwant %v",
					trial, name, n, k, sources, targets, got, want)
			}
		}
	}
}

// The baselines and the contributed algorithms must agree on graphs beyond
// the oracle's reach.
func TestBaselinesAgreeWithCore(t *testing.T) {
	rng := rand.New(rand.NewSource(1000))
	g := testgraphs.RandomConnected(rng, 300, 900, 40)
	targets := testgraphs.RandomCategory(rng, g, "T", 5)
	for _, k := range []int{1, 10, 30} {
		q := core.Query{Sources: []graph.NodeID{2}, Targets: targets, K: k}
		ref, err := core.BestFirst(g, q, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := lengthsOf(ref)
		for name, fn := range deviation.Algorithms() {
			paths, err := fn(g, q, core.Options{})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if got := lengthsOf(paths); !reflect.DeepEqual(got, want) {
				t.Fatalf("%s k=%d:\n got %v\nwant %v", name, k, got, want)
			}
		}
	}
}

func TestBaselinesUnreachableAndSparse(t *testing.T) {
	g, err := graph.NewBuilder(4).AddEdge(0, 1, 1).Build()
	if err != nil {
		t.Fatal(err)
	}
	q := core.Query{Sources: []graph.NodeID{0}, Targets: []graph.NodeID{3}, K: 2}
	for name, fn := range deviation.Algorithms() {
		paths, err := fn(g, q, core.Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(paths) != 0 {
			t.Fatalf("%s: got %v, want none", name, paths)
		}
	}
}

// DA-SPT's Pascoal shortcut must not change results relative to DA across
// many k values on one graph (exercises both the shortcut and fallback
// branches).
func TestDASPTPascoalBranches(t *testing.T) {
	rng := rand.New(rand.NewSource(1001))
	g := testgraphs.RandomConnected(rng, 60, 240, 12)
	targets := testgraphs.RandomCategory(rng, g, "T", 2)
	for k := 1; k <= 40; k += 3 {
		q := core.Query{Sources: []graph.NodeID{0}, Targets: targets, K: k}
		a, err := deviation.DA(g, q, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := deviation.DASPT(g, q, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(lengthsOf(a), lengthsOf(b)) {
			t.Fatalf("k=%d: DA %v vs DA-SPT %v", k, lengthsOf(a), lengthsOf(b))
		}
	}
}

func TestBaselineValidation(t *testing.T) {
	g := testgraphs.Fig1()
	for name, fn := range deviation.Algorithms() {
		if _, err := fn(g, core.Query{K: 1}, core.Options{}); err == nil {
			t.Fatalf("%s accepted an invalid query", name)
		}
	}
}
