package core

import (
	"kpj/internal/fault"
	"kpj/internal/graph"
)

// sptiTree is the incremental shortest path tree of Section 5.3: a paused
// A* over the FORWARD space from the source side toward the destination
// category, keyed by ds(v) + lb(v, V_T). Phase one (initSPTI +
// initialPath) settles nodes until the virtual target is reached — the
// by-product is the first shortest path. growTo(τ) then resumes the search
// until every node with ds(v) + lb(v, V_T) ≤ τ is settled, which by
// Prop. 5.2 covers every node on any source→V_T path of length ≤ τ. The
// reverse-space TestLB prunes everything not settled here.
//
// The tree state lives in the workspace's shared SPT scratch; only this
// thin driver is per-query.
type sptiTree struct {
	fwd *Space
	h   Heuristic // growth key heuristic: Eq. 2 bound toward V_T (or zero)
	t   *SPT
	ws  *Workspace
	// nsettled counts settled nodes for the spt_build/grow span payloads.
	nsettled int
	st       *Stats
	bound    *Bound
}

// initSPTI seeds the workspace-cached incremental tree for a new query.
func (ws *Workspace) initSPTI(fwd *Space, h Heuristic, st *Stats, bound *Bound) *sptiTree {
	t := &ws.spti
	*t = sptiTree{fwd: fwd, h: h, t: &ws.spt, ws: ws, st: st, bound: bound}
	t.t.begin(fwd.NumSpaceNodes())
	t.t.setDist(fwd.Root, 0, -1)
	t.t.q.PushOrDecrease(fwd.Root, hOrZero(h, fwd.Root))
	return t
}

// settleOne pops and settles the next node, returning it (or -1 when the
// frontier is exhausted or the query bound tripped — the two are told
// apart by exhausted()/the bound's sticky error).
func (t *sptiTree) settleOne() graph.NodeID {
	for t.t.q.Len() > 0 {
		// The mid-SPT-growth fault point: injected errors stop growth via
		// the bound, and the engine aborts with its prefix at the next poll.
		if ferr := fault.Hit(fault.SPTGrow); ferr != nil {
			t.bound.Inject(ferr)
		}
		if t.bound.Step() != nil {
			return -1
		}
		vi, _ := t.t.q.Pop()
		v := graph.NodeID(vi)
		if t.t.Settled(v) {
			continue
		}
		t.t.settle(v)
		t.nsettled++
		if t.st != nil {
			t.st.SPTNodes++
			t.st.NodesPopped++
		}
		dv := t.t.Dist(v)
		t.fwd.Expand(v, func(to graph.NodeID, w graph.Weight) { //kpjlint:alloc(closure does not escape: the callee only invokes it, held to by the -escapes gate)
			if nd := dv + w; nd < t.t.Dist(to) {
				h := hOrZero(t.h, to)
				if h >= graph.Infinity {
					return
				}
				t.t.setDist(to, nd, v)
				t.t.q.PushOrDecrease(to, nd+h)
			}
		})
		return v
	}
	return -1
}

// initialPath runs phase one: grow until the forward goal (the virtual
// target) settles, and return the first shortest path translated into the
// REVERSE space (suffix after the reverse root, cumulative lengths). The
// result lives in the workspace arenas, like every SearchResult.
func (t *sptiTree) initialPath() (SearchResult, bool) {
	for !t.t.Settled(t.fwd.Goal) {
		if t.settleOne() < 0 {
			return SearchResult{}, false
		}
	}
	// Forward chain goal→root via parents, which read left to right is
	// exactly the reverse-space order: virtual target → … → source side.
	chain := t.ws.rev[:0]
	for v := t.fwd.Goal; v >= 0; v = t.t.Parent(v) {
		chain = append(chain, v) //kpjlint:alloc(amortized growth of the retained reverse-walk buffer)
	}
	t.ws.rev = chain
	total := t.t.Dist(t.fwd.Goal)
	n := len(chain) - 1 // reverse-space root is the virtual target
	res := SearchResult{
		Suffix: t.ws.nodeArena.take(n)[:n],
		Lens:   t.ws.lenArena.take(n)[:n],
		Total:  total,
	}
	for i := 0; i < n; i++ {
		v := chain[i+1]
		res.Suffix[i] = v
		res.Lens[i] = total - t.t.Dist(v)
	}
	return res, true
}

// growTo resumes the search until every node with key ≤ tau is settled
// (keys are monotone because the growth heuristic is consistent).
func (t *sptiTree) growTo(tau graph.Weight) {
	for t.t.q.Len() > 0 && t.t.q.TopKey() <= tau {
		if t.settleOne() < 0 {
			return // bound tripped: stop growing, the engine will abort
		}
	}
}

// exhausted reports whether the tree can grow no further — at that point
// "not in SPT_I" means "unreachable from the source side".
func (t *sptiTree) exhausted() bool { return t.t.q.Len() == 0 }

// size returns the number of settled nodes (span payload).
func (t *sptiTree) size() int { return t.nsettled }

// Allow implements Pruner, restricting reverse-space searches to SPT_I
// nodes. Exclusions are definitive only once the tree is exhausted.
func (t *sptiTree) Allow(v graph.NodeID) (bool, bool) {
	if t.t.Settled(v) {
		return true, true
	}
	return false, t.exhausted()
}

// sptiHeuristic estimates the remaining distance in the REVERSE space
// (i.e. the distance from the source side to v): exact ds for settled
// nodes, landmark fallback otherwise (Alg. 8 line 5).
type sptiHeuristic struct {
	t        *sptiTree
	fallback Heuristic
}

// H implements Heuristic.
func (h sptiHeuristic) H(v graph.NodeID) graph.Weight {
	if h.t.t.Settled(v) {
		return h.t.t.Dist(v)
	}
	return hOrZero(h.fallback, v)
}
