// Ablation benchmarks for the design choices DESIGN.md calls out: landmark
// selection strategy, workspace reuse, the SPT overlays, and the
// iteratively-bounding discipline itself. These go beyond the paper's
// figures — they isolate the contribution of individual mechanisms.
package kpj_test

import (
	"bytes"
	"testing"

	"kpj/internal/core"
	"kpj/internal/graph"
	"kpj/internal/landmark"
)

// BenchmarkAblationLandmarkSelection compares farthest-point landmark
// selection (the paper's choice, footnote 3) against uniform random
// selection at equal |L|.
func BenchmarkAblationLandmarkSelection(b *testing.B) {
	e := env()
	g, err := e.Graph("CAL")
	if err != nil {
		b.Fatal(err)
	}
	targets, err := g.Category("Lake")
	if err != nil {
		b.Fatal(err)
	}
	sets, _, err := e.QuerySets("CAL", "Lake")
	if err != nil {
		b.Fatal(err)
	}
	sources := sets[2]
	builders := map[string]func() (*landmark.Index, error){
		"farthest": func() (*landmark.Index, error) { return landmark.Build(g, 8, 1) },
		"random":   func() (*landmark.Index, error) { return landmark.BuildRandom(g, 8, 1) },
	}
	for _, name := range []string{"farthest", "random"} {
		ix, err := builders[name]()
		if err != nil {
			b.Fatal(err)
		}
		opt := core.Options{Index: ix, Alpha: 1.1, Workspace: core.NewWorkspace(g.NumNodes() + 2)}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				q := core.Query{Sources: []graph.NodeID{sources[i%len(sources)]}, Targets: targets, K: 20}
				if _, err := core.IterBoundSPTI(g, q, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationWorkspaceReuse quantifies the epoch-stamped scratch
// reuse: fresh workspace per query vs one reused across queries.
func BenchmarkAblationWorkspaceReuse(b *testing.B) {
	e := env()
	g, err := e.Graph("COL")
	if err != nil {
		b.Fatal(err)
	}
	targets, err := g.Category("T2")
	if err != nil {
		b.Fatal(err)
	}
	sets, _, err := e.QuerySets("COL", "T2")
	if err != nil {
		b.Fatal(err)
	}
	sources := sets[2]
	ix, err := e.IndexWith("COL", 8)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, ws *core.Workspace) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q := core.Query{Sources: []graph.NodeID{sources[i%len(sources)]}, Targets: targets, K: 20}
			if _, err := core.IterBoundSPTI(g, q, core.Options{Index: ix, Alpha: 1.1, Workspace: ws}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("reused", func(b *testing.B) { run(b, core.NewWorkspace(g.NumNodes()+2)) })
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q := core.Query{Sources: []graph.NodeID{sources[i%len(sources)]}, Targets: targets, K: 20}
			if _, err := core.IterBoundSPTI(g, q, core.Options{Index: ix, Alpha: 1.1}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationBoundingDiscipline isolates what each mechanism adds on
// one fixed query mix: exact best-first (no τ), plain iterative bounding,
// the SPT_P overlay, and the full reverse-space SPT_I approach.
func BenchmarkAblationBoundingDiscipline(b *testing.B) {
	for _, step := range []struct {
		name string
		fn   core.Func
	}{
		{"1-bestfirst", core.BestFirst},
		{"2-iterbound", core.IterBound},
		{"3-sptp", core.IterBoundSPTP},
		{"4-spti", core.IterBoundSPTI},
	} {
		b.Run(step.name, func(b *testing.B) {
			e := env()
			g, err := e.Graph("COL")
			if err != nil {
				b.Fatal(err)
			}
			targets, err := g.Category("T2")
			if err != nil {
				b.Fatal(err)
			}
			sets, _, err := e.QuerySets("COL", "T2")
			if err != nil {
				b.Fatal(err)
			}
			ix, err := e.IndexWith("COL", 8)
			if err != nil {
				b.Fatal(err)
			}
			opt := core.Options{Index: ix, Alpha: 1.1, Workspace: core.NewWorkspace(g.NumNodes() + 2)}
			sources := sets[3] // Q4: where the disciplines differ most
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := core.Query{Sources: []graph.NodeID{sources[i%len(sources)]}, Targets: targets, K: 20}
				if _, err := step.fn(g, q, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationIndexPersistence compares building the landmark index
// from scratch against loading it from its serialized form.
func BenchmarkAblationIndexPersistence(b *testing.B) {
	e := env()
	g, err := e.Graph("CAL")
	if err != nil {
		b.Fatal(err)
	}
	ix, err := landmark.Build(g, 8, 1)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.Run("build", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := landmark.Build(g, 8, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("load", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := landmark.Read(bytes.NewReader(data), g); err != nil {
				b.Fatal(err)
			}
		}
	})
}
