// Package src exercises every allocation-site class the allocfree
// analyzer approximates, plus the waiver forms and reachability rules.
package src

import (
	"fmt"
	"sync/atomic"
)

var counter int64

type pair struct{ a, b int }

//kpjlint:noalloc
func Root(xs []int, m map[string]int, s1, s2 string, n int) {
	s := make([]int, n) // want `make reachable from //kpjlint:noalloc root src.Root`
	_ = s
	xs = append(xs, n) // want `append \(backing array may grow\) reachable from //kpjlint:noalloc root src.Root`
	_ = xs
	m["k"] = n // want `map assignment reachable from //kpjlint:noalloc root src.Root`
	p := new(int) // want `new reachable from //kpjlint:noalloc root src.Root`
	_ = p
	_ = s1 + s2 // want `string concatenation reachable from //kpjlint:noalloc root src.Root`
	_ = []byte(s1) // want `conversion from string \(copies\) reachable from //kpjlint:noalloc root src.Root`
	sl := []int{1, 2} // want `slice literal reachable from //kpjlint:noalloc root src.Root`
	_ = sl
	mm := map[string]int{} // want `map literal reachable from //kpjlint:noalloc root src.Root`
	_ = mm
	q := &pair{a: n} // want `&composite literal \(may escape\) reachable from //kpjlint:noalloc root src.Root`
	_ = q
	var i any = n // want `interface boxing of int reachable from //kpjlint:noalloc root src.Root`
	_ = i
	fmt.Sprintln() // want `call to fmt.Sprintln \(no allocation facts; outside the proof\) reachable from //kpjlint:noalloc root src.Root`
	cl := func() { n++ } // want `closure captures enclosing variables reachable from //kpjlint:noalloc root src.Root`
	cl()               // want `call through function value \(unknown target\) reachable from //kpjlint:noalloc root src.Root`
	go cleanHelper(n) // want `go statement \(heap-allocated goroutine \+ closure\) reachable from //kpjlint:noalloc root src.Root`

	atomic.AddInt64(&counter, 1) // allowed package: no finding

	ws := make([]int, 8) //kpjlint:alloc(warm-up growth of a retained buffer)
	_ = ws

	_ = func() int { return n * 2 }() // immediately-invoked literal: inline, allocation-free

	helper()
	_ = cleanHelper(n)
	_ = docWaived()
}

// helper is not a root itself; its site is reported because Root
// reaches it.
func helper() {
	_ = make([]chan int, 4) // want `make reachable from //kpjlint:noalloc root src.Root`
}

func cleanHelper(n int) int {
	x := n * 2
	return x
}

// docWaived is a deliberate allocation subtree: the doc-comment waiver
// silences its sites and stops the walk.
//
//kpjlint:alloc(result-path copy handed to the caller)
func docWaived() *pair {
	return &pair{}
}

// Unreachable allocates but no root reaches it: no finding.
func Unreachable() []int {
	return make([]int, 1)
}
