// Package tuner implements the parameter search the paper leaves as
// future work (Section 7, Eval-I: "It will be our future work to
// automatically find the best choice of |L| and α"). Given a graph and a
// representative destination set, Tune samples stratified queries and
// evaluates IterBound-SPT_I under a grid of landmark counts and α values,
// picking the cheapest configuration.
//
// Cost is measured in deterministic work units (priority-queue pops plus
// edge relaxations) rather than wall time, so tuning results are
// reproducible and testable; on road networks the two rank configurations
// identically.
package tuner

import (
	"fmt"
	"math/rand"
	"sort"

	"kpj/internal/core"
	"kpj/internal/graph"
	"kpj/internal/landmark"
	"kpj/internal/sssp"
)

// Config controls the grid search. Zero values take the documented
// defaults.
type Config struct {
	// LandmarkCounts to try (default {4, 8, 16, 32}). A count of 0 tries
	// the no-landmark variant.
	LandmarkCounts []int
	// Alphas to try (default {1.05, 1.1, 1.2, 1.5}).
	Alphas []float64
	// SampleQueries drawn per evaluation (default 16), stratified across
	// the distance spectrum like the paper's Q1..Q5 sets.
	SampleQueries int
	// K used for the sample queries (default 20, the paper's default).
	K int
	// Seed makes sampling and landmark selection deterministic.
	Seed int64
	// Parallelism fans each sample query's subspace searches and the
	// landmark-build Dijkstras across workers (<= 1 sequential). Costs are
	// identical at every level, so tuning results do not depend on it.
	Parallelism int
}

func (c Config) withDefaults() Config {
	if len(c.LandmarkCounts) == 0 {
		c.LandmarkCounts = []int{4, 8, 16, 32}
	}
	if len(c.Alphas) == 0 {
		c.Alphas = []float64{1.05, 1.1, 1.2, 1.5}
	}
	if c.SampleQueries <= 0 {
		c.SampleQueries = 16
	}
	if c.K <= 0 {
		c.K = 20
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Trial records one evaluated configuration.
type Trial struct {
	Landmarks int
	Alpha     float64
	Cost      int64 // queue pops + edge relaxations over the sample
}

// Result is the tuning outcome.
type Result struct {
	Landmarks int
	Alpha     float64
	Index     *landmark.Index // nil when Landmarks == 0 won
	Cost      int64
	Trials    []Trial // every configuration, cheapest first
}

// Tune grid-searches (|L|, α) for IterBound-SPT_I on queries to the given
// destination set and returns the best configuration together with its
// ready-built index.
func Tune(g *graph.Graph, targets []graph.NodeID, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if len(targets) == 0 {
		return Result{}, fmt.Errorf("tuner: no target nodes")
	}

	sources, err := sampleSources(g, targets, cfg.SampleQueries, cfg.Seed)
	if err != nil {
		return Result{}, err
	}
	ws := core.NewWorkspace(g.NumNodes() + 2)

	var trials []Trial
	indexes := map[int]*landmark.Index{}
	for _, count := range cfg.LandmarkCounts {
		var ix *landmark.Index
		if count > 0 {
			ix, err = landmark.BuildParallel(g, count, cfg.Seed, cfg.Parallelism)
			if err != nil {
				return Result{}, err
			}
			indexes[count] = ix
		}
		for _, alpha := range cfg.Alphas {
			if alpha <= 1 {
				return Result{}, fmt.Errorf("tuner: alpha %v must exceed 1", alpha)
			}
			var st core.Stats
			for _, s := range sources {
				q := core.Query{Sources: []graph.NodeID{s}, Targets: targets, K: cfg.K}
				if _, err := core.IterBoundSPTI(g, q, core.Options{
					Index: ix, Alpha: alpha, Workspace: ws, Stats: &st,
					Parallelism: cfg.Parallelism,
				}); err != nil {
					return Result{}, fmt.Errorf("tuner: |L|=%d alpha=%v: %w", count, alpha, err)
				}
			}
			trials = append(trials, Trial{
				Landmarks: count,
				Alpha:     alpha,
				Cost:      st.NodesPopped + st.EdgesRelaxed,
			})
		}
	}
	sort.SliceStable(trials, func(i, j int) bool { return trials[i].Cost < trials[j].Cost })
	best := trials[0]
	return Result{
		Landmarks: best.Landmarks,
		Alpha:     best.Alpha,
		Index:     indexes[best.Landmarks],
		Cost:      best.Cost,
		Trials:    trials,
	}, nil
}

// sampleSources draws `count` query sources stratified by distance to the
// target set (near → far), mirroring the paper's Q1..Q5 workload.
func sampleSources(g *graph.Graph, targets []graph.NodeID, count int, seed int64) ([]graph.NodeID, error) {
	dist := sssp.DistancesToSet(g, targets)
	type nd struct {
		v graph.NodeID
		d graph.Weight
	}
	// Never empty: every target reaches itself at distance 0.
	reachable := make([]nd, 0, g.NumNodes())
	for v, d := range dist {
		if d < graph.Infinity {
			reachable = append(reachable, nd{graph.NodeID(v), d})
		}
	}
	sort.Slice(reachable, func(i, j int) bool {
		if reachable[i].d != reachable[j].d {
			return reachable[i].d < reachable[j].d
		}
		return reachable[i].v < reachable[j].v
	})
	if count > len(reachable) {
		count = len(reachable)
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]graph.NodeID, 0, count)
	stride := len(reachable) / count
	for i := 0; i < count; i++ {
		lo := i * stride
		hi := lo + stride
		if i == count-1 {
			hi = len(reachable)
		}
		out = append(out, reachable[lo+rng.Intn(hi-lo)].v)
	}
	return out, nil
}
