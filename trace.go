package kpj

import (
	"fmt"
	"io"

	"kpj/internal/core"
	"kpj/internal/graph"
)

// traceWriter renders engine events as human-readable lines — the
// EXPLAIN-style view of a query: which subspaces were enqueued with what
// lower bound, each bounded-search round and its threshold τ, and every
// emitted path. Enable it with Options.Trace.
func traceWriter(w io.Writer, numNodes int) core.TraceFunc {
	nodeName := func(v NodeID) string {
		switch {
		case int(v) == numNodes:
			return "t*" // virtual target
		case int(v) == numNodes+1:
			return "s*" // virtual source
		default:
			return fmt.Sprint(v)
		}
	}
	return func(ev core.Event) {
		switch ev.Kind {
		case core.EventEmit:
			fmt.Fprintf(w, "emit    vertex=%d node=%s length=%d\n", ev.Vertex, nodeName(ev.Node), ev.Length)
		case core.EventEnqueue:
			fmt.Fprintf(w, "enqueue vertex=%d node=%s lb=%d\n", ev.Vertex, nodeName(ev.Node), ev.Length)
		case core.EventResolve:
			tau := "inf"
			if ev.Tau < graph.Infinity {
				tau = fmt.Sprint(ev.Tau)
			}
			switch ev.Status {
			case core.Found:
				fmt.Fprintf(w, "resolve vertex=%d node=%s tau=%s -> found length=%d\n", ev.Vertex, nodeName(ev.Node), tau, ev.Length)
			case core.Exceeded:
				fmt.Fprintf(w, "resolve vertex=%d node=%s tau=%s -> exceeded\n", ev.Vertex, nodeName(ev.Node), tau)
			default:
				fmt.Fprintf(w, "resolve vertex=%d node=%s tau=%s -> empty\n", ev.Vertex, nodeName(ev.Node), tau)
			}
		case core.EventDrop:
			fmt.Fprintf(w, "drop    vertex=%d node=%s (provably empty)\n", ev.Vertex, nodeName(ev.Node))
		}
	}
}

// ValidatePaths checks a query result against the graph: every path must
// be a simple path whose hops are graph edges, start in sources, end in
// targets, carry a consistent Length, and the sequence must be sorted by
// length. It returns nil for a valid result. Use it in tests or to audit
// results from an untrusted store.
func ValidatePaths(g *Graph, sources, targets []NodeID, paths []Path) error {
	isSource := make(map[NodeID]bool, len(sources))
	for _, s := range sources {
		isSource[s] = true
	}
	isTarget := make(map[NodeID]bool, len(targets))
	for _, t := range targets {
		isTarget[t] = true
	}
	var prev Weight = -1
	for i, p := range paths {
		if len(p.Nodes) == 0 {
			return fmt.Errorf("kpj: path %d is empty", i)
		}
		if !isSource[p.Nodes[0]] {
			return fmt.Errorf("kpj: path %d starts at %d, not a source", i, p.Nodes[0])
		}
		if last := p.Nodes[len(p.Nodes)-1]; !isTarget[last] {
			return fmt.Errorf("kpj: path %d ends at %d, not a target", i, last)
		}
		seen := make(map[NodeID]bool, len(p.Nodes))
		var length Weight
		for j, v := range p.Nodes {
			if v < 0 || int(v) >= g.NumNodes() {
				return fmt.Errorf("kpj: path %d node %d out of range", i, v)
			}
			if seen[v] {
				return fmt.Errorf("kpj: path %d revisits node %d", i, v)
			}
			seen[v] = true
			if j > 0 {
				w, ok := g.g.HasEdge(p.Nodes[j-1], v)
				if !ok {
					return fmt.Errorf("kpj: path %d hop (%d,%d) is not an edge", i, p.Nodes[j-1], v)
				}
				length += w
			}
		}
		if length != p.Length {
			return fmt.Errorf("kpj: path %d declares length %d, edges sum to %d", i, p.Length, length)
		}
		if p.Length < prev {
			return fmt.Errorf("kpj: path %d length %d below predecessor %d", i, p.Length, prev)
		}
		prev = p.Length
	}
	return nil
}
