package deviation

import (
	"kpj/internal/core"
	"kpj/internal/graph"
)

// pascoal attempts the constant-time candidate of Pascoal [24] against the
// full shortest path tree toward the virtual target (spt, built by
// core.Workspace.BuildFullSPT over the reverse space, so Parent points
// toward the target): among the valid first hops (u, v) of the subspace at
// vertex u, take the one minimizing prefix + ω(u,v) + δ(v, target); if
// concatenating the prefix, that edge, and v's tree path to the target
// yields a simple path, it is the subspace's shortest path. Otherwise
// ok=false and the caller must run a full search.
//
// Simplicity is checked with the workspace's epoch-stamped marks instead
// of per-call maps; the scope is consumed before any SubspaceSearch on ws
// begins, so sharing the ban storage is safe. The result slices live in
// ws's per-query arenas.
func pascoal(ws *core.Workspace, spt *core.SPT, sp *core.Space, pt *core.PseudoTree, u core.VertexID) (core.SearchResult, bool) {
	ws.BeginMarks()
	pt.PrefixNodes(u, ws.Mark)

	best := graph.NodeID(-1)
	bestW := graph.Infinity
	var bestEdge graph.Weight
	prefixLen := pt.PrefixLen(u)
	sp.Expand(pt.Node(u), func(to graph.NodeID, w graph.Weight) {
		if ws.Marked(to) || spt.Dist(to) >= graph.Infinity {
			return
		}
		if pt.ExcludedHas(u, to) {
			return
		}
		if est := prefixLen + w + spt.Dist(to); est < bestW {
			best, bestW, bestEdge = to, est, w
		}
	})
	if best < 0 {
		return core.SearchResult{}, false // provably empty: no valid first hop reaches the target
	}

	// Walk best's tree path to the target, checking simplicity against the
	// prefix (the tree path itself is simple by construction, so marking
	// as we go also guards against a corrupted tree at no extra cost).
	n := 0
	for v := best; v >= 0; v = spt.Parent(v) {
		if ws.Marked(v) {
			return core.SearchResult{}, false // concatenation not simple: fall back
		}
		ws.Mark(v)
		n++
	}
	res := core.SearchResult{
		Suffix: ws.TakeNodes(n)[:n],
		Lens:   ws.TakeLens(n)[:n],
		Total:  bestW,
	}
	length := prefixLen + bestEdge
	i := 0
	for v := best; v >= 0; v = spt.Parent(v) {
		res.Suffix[i] = v
		res.Lens[i] = length + (spt.Dist(best) - spt.Dist(v))
		i++
	}
	return res, true
}
