// Package nondeterm defines the kpjlint analyzer that flags sources of
// scheduling- or time-dependent behavior in output-ordering-sensitive
// packages: time.Now/time.Since, math/rand global-source functions,
// sync.Map (iteration and memory-model semantics make it unsuitable for
// anything the emitted path sequence depends on), and raw goroutine
// spawns — intra-query concurrency must go through core.Pool, whose
// merge discipline keeps output bit-identical at every parallelism
// level (DESIGN.md §8). Seeded generators (rand.New(rand.NewSource(s)))
// are pure functions of the seed and stay allowed. Deliberate uses
// carry //kpjlint:deterministic with a justification.
//
// Scope (analysis.OrderSensitive) includes internal/sssp and
// internal/pqueue: since the bucket queue pops equal keys in a
// different order than the binary heap, the canonical trees depend on
// nothing but deterministic tie-breaking — a stray clock read or global
// rand draw in the queue or tree layer would be invisible in tests that
// happen to take one queue path and corrupt the other.
package nondeterm

import (
	"go/ast"
	"go/types"

	"kpj/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "nondeterm",
	Doc:  "flags time.Now, math/rand global-source calls, sync.Map, and goroutine spawns outside core.Pool in order-sensitive packages",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !analysis.OrderSensitive(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.TestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if !pass.Annotated(n, analysis.Deterministic) {
					pass.Reportf(n.Pos(), "goroutine spawn outside core.Pool in order-sensitive package %s; use core.Pool or annotate //kpjlint:deterministic", pass.Pkg.Path())
				}
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.SelectorExpr:
				checkSyncMap(pass, n)
			}
			return true
		})
	}
	return nil
}

// pkgFunc resolves a call to (package path, function name) when its
// callee is a package-level function of an imported package.
func pkgFunc(pass *analysis.Pass, call *ast.CallExpr) (string, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel]
	if !ok || obj.Pkg() == nil {
		return "", ""
	}
	if _, ok := obj.(*types.Func); !ok {
		return "", ""
	}
	// Only package-qualified calls (time.Now), not method calls on a
	// value (rng.Intn): methods have a receiver ident, not a package.
	if id, ok := sel.X.(*ast.Ident); !ok {
		return "", ""
	} else if _, isPkg := pass.TypesInfo.Uses[id].(*types.PkgName); !isPkg {
		return "", ""
	}
	return obj.Pkg().Path(), obj.Name()
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	path, name := pkgFunc(pass, call)
	switch path {
	case "time":
		if name == "Now" || name == "Since" || name == "Until" {
			if !pass.Annotated(call, analysis.Deterministic) {
				pass.Reportf(call.Pos(), "time.%s in order-sensitive package %s; wall-clock must not influence output (annotate //kpjlint:deterministic if it provably cannot)", name, pass.Pkg.Path())
			}
		}
	case "math/rand", "math/rand/v2":
		// Constructors of seeded generators are deterministic; every
		// other package-level function draws from the global source.
		if name == "New" || name == "NewSource" || name == "NewZipf" || name == "NewPCG" || name == "NewChaCha8" {
			return
		}
		if !pass.Annotated(call, analysis.Deterministic) {
			pass.Reportf(call.Pos(), "global-source rand.%s in order-sensitive package %s; use rand.New(rand.NewSource(seed)) so the draw is a pure function of the query", name, pass.Pkg.Path())
		}
	}
}

func checkSyncMap(pass *analysis.Pass, sel *ast.SelectorExpr) {
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.TypeName)
	if !ok || obj.Pkg() == nil {
		return
	}
	if obj.Pkg().Path() == "sync" && obj.Name() == "Map" {
		if !pass.Annotated(sel, analysis.Deterministic) {
			pass.Reportf(sel.Pos(), "sync.Map in order-sensitive package %s; its iteration order and loose consistency cannot feed ordered output", pass.Pkg.Path())
		}
	}
}
