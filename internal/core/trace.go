package core

import "kpj/internal/graph"

// EventKind classifies engine trace events.
type EventKind int

const (
	// EventEmit: a result path was output (Length = its length).
	EventEmit EventKind = iota
	// EventEnqueue: a fresh subspace entered the queue with lower bound
	// Length (after the ω(P) floor of Alg. 2 line 9).
	EventEnqueue
	// EventResolve: a bounded search ran against threshold Tau and ended
	// with Status (Found: Length = the path length; Exceeded: the
	// subspace re-entered the queue with bound Tau; Empty: dropped).
	EventResolve
	// EventDrop: a fresh subspace was proven empty by CompLB and never
	// enqueued.
	EventDrop
)

func (k EventKind) String() string {
	switch k {
	case EventEmit:
		return "emit"
	case EventEnqueue:
		return "enqueue"
	case EventResolve:
		return "resolve"
	default:
		return "drop"
	}
}

// Event is one step of a query's execution, as observed by a TraceFunc.
// It makes the best-first exploration of Figs. 3-4 visible: which
// subspaces were divided, which were pruned by bounds, and how τ grew.
type Event struct {
	Kind   EventKind
	Vertex VertexID     // pseudo-tree vertex of the subspace
	Node   graph.NodeID // its space node
	Length graph.Weight // path length or lower bound (see Kind)
	Tau    graph.Weight // threshold used (EventResolve only)
	Status SearchStatus // outcome (EventResolve only)
}

// TraceFunc receives engine events. Tracing is per-query (set via
// Options.Trace) and adds no cost when unset.
type TraceFunc func(Event)

func (e *engine) trace(ev Event) {
	if e.onEvent != nil {
		e.onEvent(ev) //kpjlint:alloc(user-installed trace callback; tracing is opt-in per query and runs outside the proof)
	}
}
