// Testdata for the atomicmix analyzer (it applies in every package).
package pkg

import (
	"sync"
	"sync/atomic"
)

type pool struct {
	remaining int64
	limit     int64 // never touched atomically
	wg        sync.WaitGroup
}

func (p *pool) draw(n int64) int64 {
	return atomic.AddInt64(&p.remaining, -n)
}

func (p *pool) loadAtomic() int64 {
	return atomic.LoadInt64(&p.remaining)
}

func (p *pool) leakPlainRead() int64 {
	return p.remaining // want `accessed atomically elsewhere`
}

func (p *pool) leakPlainWrite() {
	p.remaining = 0 // want `accessed atomically elsewhere`
}

func (p *pool) limitOK() int64 {
	return p.limit
}

func (p *pool) afterBarrier() int64 {
	p.wg.Wait()
	//kpjlint:deterministic all writers joined by the barrier above
	return p.remaining
}

var spins int64

func spin() {
	atomic.AddInt64(&spins, 1)
}

func spinCount() int64 {
	return spins // want `accessed atomically elsewhere`
}

type typed struct {
	n atomic.Int64 // atomic.* types are immune by construction
}

func (t *typed) bump() int64 {
	return t.n.Add(1)
}
