package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"kpj/internal/fault"
	"kpj/internal/leaktest"
)

// TestPoolCloseLeavesNoGoroutines: a pool's workers must all exit at
// Close, across multiple rounds of work.
func TestPoolCloseLeavesNoGoroutines(t *testing.T) {
	defer leaktest.Check(t)()
	opt := &Options{Parallelism: 4}
	opt.bound = NewBound(context.Background(), 0)
	p := opt.NewPool(8)
	var ran atomic.Int64
	for round := 0; round < 3; round++ {
		p.Run(32, func(task int, ws *Workspace, st *Stats) { ran.Add(1) })
	}
	p.Close()
	if got := ran.Load(); got != 96 {
		t.Fatalf("ran %d tasks, want 96", got)
	}
}

// TestPoolWorkerPanicBecomesBoundError: a panic inside a pool task must
// not kill the process or strand the round's barrier — the pool recovers
// it, the round completes, and the query's bound carries ErrWorkerPanic.
func TestPoolWorkerPanicBecomesBoundError(t *testing.T) {
	defer leaktest.Check(t)()
	b := NewBound(context.Background(), 0)
	opt := &Options{Parallelism: 2}
	opt.bound = b
	p := opt.NewPool(8)
	p.Run(4, func(task int, ws *Workspace, st *Stats) {
		if task == 2 {
			panic("boom")
		}
	})
	p.Close()
	if err := b.Err(); !errors.Is(err, ErrWorkerPanic) {
		t.Fatalf("bound error = %v, want ErrWorkerPanic", err)
	}
}

// TestPoolFaultInjectionStopsRound: an injected pool.worker fault flows
// into the bound, the barrier still completes, and no goroutine leaks.
func TestPoolFaultInjectionStopsRound(t *testing.T) {
	defer leaktest.Check(t)()
	fault.Install(fault.New().Add(fault.Rule{Point: fault.PoolWorker, Nth: 2, Count: 1}))
	defer fault.Install(nil)
	b := NewBound(context.Background(), 0)
	opt := &Options{Parallelism: 2}
	opt.bound = b
	p := opt.NewPool(8)
	p.Run(6, func(task int, ws *Workspace, st *Stats) {})
	p.Close()
	if err := b.Err(); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("bound error = %v, want ErrInjected", err)
	}
}

// TestPoolInjectedPanicRecovered: a KindPanic rule at the panic-safe
// pool.worker point is recovered by the pool like an organic panic.
func TestPoolInjectedPanicRecovered(t *testing.T) {
	defer leaktest.Check(t)()
	fault.Install(fault.New().Add(fault.Rule{Point: fault.PoolWorker, Nth: 1, Count: 1, Kind: fault.KindPanic}))
	defer fault.Install(nil)
	b := NewBound(context.Background(), 0)
	opt := &Options{Parallelism: 2}
	opt.bound = b
	p := opt.NewPool(8)
	p.Run(4, func(task int, ws *Workspace, st *Stats) {})
	p.Close()
	if err := b.Err(); !errors.Is(err, ErrWorkerPanic) {
		t.Fatalf("bound error = %v, want ErrWorkerPanic", err)
	}
}
