package kpj

import (
	"runtime"
	"sync"
	"sync/atomic"

	"kpj/internal/core"
)

// BatchQuery is one query of a batch: the k shortest simple paths from any
// of Sources to any of Targets.
type BatchQuery struct {
	Sources []NodeID
	Targets []NodeID
	K       int
}

// BatchResult carries the outcome for the query at the same index.
type BatchResult struct {
	Paths []Path
	Err   error
}

// Batch answers many queries concurrently over one graph, using up to
// `parallelism` workers (≤ 0 means GOMAXPROCS). Each worker reuses its own
// scratch workspace across the queries it processes, so large batches
// avoid the per-query allocation cost entirely. Results align with the
// input by index. When opt.Stats is set, the workers' counters are merged
// into it after all queries finish.
func (g *Graph) Batch(queries []BatchQuery, parallelism int, opt *Options) []BatchResult {
	results := make([]BatchResult, len(queries))
	if len(queries) == 0 {
		return results
	}
	copt, fn, err := opt.coreOptions(g)
	copt.Trace = nil // tracing interleaves across workers; unsupported in batches
	if err != nil {
		for i := range results {
			results[i].Err = err
		}
		return results
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(queries) {
		parallelism = len(queries)
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	var mu sync.Mutex // guards the merged stats
	var merged Stats
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			workerOpt := copt
			workerOpt.Workspace = core.NewWorkspace(g.NumNodes() + 2)
			var st Stats
			if copt.Stats != nil {
				workerOpt.Stats = &st
			} else {
				workerOpt.Stats = nil
			}
			for {
				i := int(next.Add(1)) - 1
				if i >= len(queries) {
					break
				}
				bq := queries[i]
				q := core.Query{Sources: dedupe(bq.Sources), Targets: dedupe(bq.Targets), K: bq.K}
				paths, err := fn(g.g, q, workerOpt)
				if err != nil {
					results[i].Err = err
					continue
				}
				out := make([]Path, len(paths))
				for j, p := range paths {
					out[j] = Path{Nodes: p.Nodes, Length: p.Length}
				}
				results[i].Paths = out
			}
			if copt.Stats != nil {
				mu.Lock()
				merged.Add(st)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if opt != nil && opt.Stats != nil {
		opt.Stats.Add(merged)
	}
	return results
}
