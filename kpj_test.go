package kpj_test

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"kpj"
)

// fig1 rebuilds the paper's running example through the public API.
func fig1(t *testing.T) *kpj.Graph {
	t.Helper()
	b := kpj.NewBuilder(15)
	edges := []struct {
		u, v kpj.NodeID
		w    kpj.Weight
	}{
		{0, 1, 1}, {0, 7, 2}, {0, 2, 3}, {0, 10, 1},
		{7, 6, 3}, {7, 8, 10}, {7, 9, 8}, {1, 9, 8}, {8, 9, 1},
		{2, 3, 5}, {2, 4, 2}, {2, 5, 3}, {2, 6, 4}, {4, 5, 2},
		{5, 14, 2}, {10, 11, 1}, {11, 12, 1}, {12, 6, 10},
		{12, 13, 10}, {13, 6, 10},
	}
	for _, e := range edges {
		b.AddBiEdge(e.u, e.v, e.w)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := g.AddCategory("hotel", []kpj.NodeID{3, 5, 6}); err != nil {
		t.Fatal(err)
	}
	return g
}

var wantLengths = []kpj.Weight{5, 6, 7, 7, 8}

func allAlgorithms() []kpj.Algorithm {
	return []kpj.Algorithm{
		kpj.IterBoundSPTI, kpj.IterBoundSPTP, kpj.IterBound,
		kpj.BestFirst, kpj.DA, kpj.DASPT,
	}
}

func TestTopKJoinAllAlgorithms(t *testing.T) {
	g := fig1(t)
	ix, err := kpj.BuildIndex(g, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range allAlgorithms() {
		for _, withIndex := range []bool{false, true} {
			opt := &kpj.Options{Algorithm: algo}
			if withIndex {
				opt.Index = ix
			}
			paths, err := g.TopKJoin(0, "hotel", 5, opt)
			if err != nil {
				t.Fatalf("%v index=%v: %v", algo, withIndex, err)
			}
			got := make([]kpj.Weight, len(paths))
			for i, p := range paths {
				got[i] = p.Length
			}
			if !reflect.DeepEqual(got, wantLengths) {
				t.Fatalf("%v index=%v: lengths = %v, want %v", algo, withIndex, got, wantLengths)
			}
		}
	}
}

func TestDefaultOptions(t *testing.T) {
	g := fig1(t)
	paths, err := g.TopKJoin(0, "hotel", 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 || paths[0].Length != 5 {
		t.Fatalf("paths = %v", paths)
	}
}

func TestTopKIsKSP(t *testing.T) {
	g := fig1(t)
	paths, err := g.TopK(0, 6, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 || paths[0].Length != 5 || paths[1].Length != 7 {
		t.Fatalf("KSP paths = %v", paths)
	}
	for _, p := range paths {
		if p.Nodes[len(p.Nodes)-1] != 6 {
			t.Fatalf("KSP path ends at %d", p.Nodes[len(p.Nodes)-1])
		}
	}
}

func TestTopKCategoryJoin(t *testing.T) {
	g := fig1(t)
	if err := g.AddCategory("start", []kpj.NodeID{0, 9}); err != nil {
		t.Fatal(err)
	}
	paths, err := g.TopKCategoryJoin("start", "hotel", 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 4 {
		t.Fatalf("got %d paths", len(paths))
	}
	if paths[0].Length != 5 {
		t.Fatalf("GKPJ P1 length = %d", paths[0].Length)
	}
	// Compare against explicit sets.
	same, err := g.TopKJoinSets([]kpj.NodeID{0, 9}, []kpj.NodeID{3, 5, 6}, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(paths, same) {
		t.Fatalf("category join and set join disagree:\n%v\n%v", paths, same)
	}
}

func TestDuplicateIdsIgnored(t *testing.T) {
	g := fig1(t)
	a, err := g.TopKJoinSets([]kpj.NodeID{0, 0, 0}, []kpj.NodeID{6, 6, 3}, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.TopKJoinSets([]kpj.NodeID{0}, []kpj.NodeID{3, 6}, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("duplicates changed the result:\n%v\n%v", a, b)
	}
}

func TestQueryErrors(t *testing.T) {
	g := fig1(t)
	if _, err := g.TopKJoin(0, "nope", 1, nil); err == nil {
		t.Fatal("want error for unknown category")
	}
	if _, err := g.TopK(0, 6, 0, nil); err == nil {
		t.Fatal("want error for k = 0")
	}
	if _, err := g.TopK(99, 6, 1, nil); err == nil {
		t.Fatal("want error for out-of-range source")
	}
	bad := &kpj.Options{Algorithm: kpj.Algorithm(42)}
	if _, err := g.TopK(0, 6, 1, bad); !errors.Is(err, kpj.ErrUnknownAlgorithm) {
		t.Fatalf("err = %v, want ErrUnknownAlgorithm", err)
	}
	if kpj.Algorithm(42).String() == "" || kpj.IterBoundSPTI.String() != "IterBoundI" {
		t.Fatal("Algorithm.String misbehaves")
	}
	if _, err := g.TopK(0, 6, 1, &kpj.Options{Alpha: 0.3}); err == nil {
		t.Fatal("want error for alpha <= 1")
	}
}

func TestIndexAccessors(t *testing.T) {
	g := fig1(t)
	ix, err := kpj.BuildIndex(g, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Count() != 3 {
		t.Fatalf("Count = %d", ix.Count())
	}
	if ix.SizeBytes() <= 0 {
		t.Fatal("SizeBytes must be positive")
	}
	if _, err := kpj.BuildIndex(g, 0, 1); err == nil {
		t.Fatal("want error for zero landmarks")
	}
}

func TestStatsThroughPublicAPI(t *testing.T) {
	g := fig1(t)
	var st kpj.Stats
	if _, err := g.TopKJoin(0, "hotel", 5, &kpj.Options{Stats: &st}); err != nil {
		t.Fatal(err)
	}
	if st.NodesPopped == 0 {
		t.Fatalf("stats empty: %+v", st)
	}
}

func TestGraphIORoundTripPublic(t *testing.T) {
	g := fig1(t)
	var gr, cat bytes.Buffer
	if err := g.WriteGraph(&gr); err != nil {
		t.Fatal(err)
	}
	if err := g.WriteCategories(&cat); err != nil {
		t.Fatal(err)
	}
	g2, err := kpj.ReadGraph(&gr)
	if err != nil {
		t.Fatal(err)
	}
	if err := g2.ReadCategories(&cat); err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatal("round trip changed the graph")
	}
	if !g2.InCategory("hotel", 6) || g2.InCategory("hotel", 0) {
		t.Fatal("round trip lost categories")
	}
	paths, err := g2.TopKJoin(0, "hotel", 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if paths[4].Length != 8 {
		t.Fatalf("round-tripped query = %v", paths)
	}
	if got := g2.Categories(); len(got) != 1 || got[0] != "hotel" {
		t.Fatalf("Categories = %v", got)
	}
	if nodes, err := g2.Category("hotel"); err != nil || len(nodes) != 3 {
		t.Fatalf("Category = %v, %v", nodes, err)
	}
}

func TestTopKWalksPublicAPI(t *testing.T) {
	g := fig1(t)
	walks, err := g.TopKWalks([]kpj.NodeID{0}, []kpj.NodeID{3, 5, 6}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(walks) != 5 || walks[0].Length != 5 {
		t.Fatalf("walks = %v", walks)
	}
	// Walk i never exceeds simple path i (Related Work contrast).
	simple, err := g.TopKJoin(0, "hotel", 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range walks {
		if walks[i].Length > simple[i].Length {
			t.Fatalf("walk %d (%d) longer than simple path (%d)", i, walks[i].Length, simple[i].Length)
		}
	}
	if _, err := g.TopKWalks(nil, []kpj.NodeID{3}, 1); err == nil {
		t.Fatal("want error for no sources")
	}
}

func TestBuilderErrorsSurface(t *testing.T) {
	if _, err := kpj.NewBuilder(2).AddEdge(0, 5, 1).Build(); err == nil {
		t.Fatal("want range error")
	}
	if _, err := kpj.NewBuilder(2).AddEdge(0, 1, -3).Build(); err == nil {
		t.Fatal("want negative-weight error")
	}
}
