package kpj_test

import (
	"bytes"
	"fmt"
	"testing"

	"kpj"
	"kpj/internal/gen"
)

// These benchmarks justify incremental landmark repair: for a small
// delta, Index.Apply (repair only the damaged table entries) must beat
// Index.ApplyRepair with a forcing threshold (full rebuild) by a wide
// margin, and the gap should close as the delta grows. Run with:
//
//	go test -bench 'BenchmarkApply(Repair|Rebuild)' -benchtime 2s .
func deltaBenchSetup(b *testing.B, ops int) (*kpj.Index, *kpj.Delta) {
	b.Helper()
	og, err := gen.Road(gen.RoadConfig{Width: 40, Height: 40, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	edges := edgesOf(og)
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "p sp %d %d\n", og.NumNodes(), len(edges))
	for _, e := range edges {
		fmt.Fprintf(&buf, "a %d %d %d\n", e[0]+1, e[1]+1, e[2])
	}
	pg, err := kpj.ReadGraph(&buf)
	if err != nil {
		b.Fatal(err)
	}
	ix, err := kpj.BuildIndex(pg, 8, 7)
	if err != nil {
		b.Fatal(err)
	}
	d := &kpj.Delta{}
	seen := map[[2]int64]bool{}
	for _, e := range edges {
		key := [2]int64{e[0], e[1]}
		if seen[key] {
			continue
		}
		seen[key] = true
		// Large decreases so even a 1-op delta genuinely damages
		// landmark tables — the interesting case for repair.
		w := e[2] / 8
		if w < 1 {
			w = 1
		}
		d.SetWeights = append(d.SetWeights, kpj.EdgeUpdate{
			U: kpj.NodeID(e[0]), V: kpj.NodeID(e[1]), W: w,
		})
		if len(d.SetWeights) == ops {
			break
		}
	}
	return ix, d
}

func benchApply(b *testing.B, ops int, threshold float64) {
	ix, d := deltaBenchSetup(b, ops)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		app, err := ix.ApplyRepair(d, threshold, 0)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(app.Stats.Repaired()), "tables-repaired")
		}
	}
}

// BenchmarkApplyRepair measures the incremental path at growing delta
// sizes (default threshold: repair unless >50% of landmarks damaged).
func BenchmarkApplyRepair(b *testing.B) {
	for _, ops := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("ops%d", ops), func(b *testing.B) { benchApply(b, ops, 0) })
	}
}

// BenchmarkApplyRebuild measures the same deltas with a forcing
// threshold so every Apply rebuilds all landmark tables from scratch —
// the cost incremental repair is avoiding.
func BenchmarkApplyRebuild(b *testing.B) {
	for _, ops := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("ops%d", ops), func(b *testing.B) { benchApply(b, ops, 1e-12) })
	}
}
