package kpj

import (
	"kpj/internal/core"
	"kpj/internal/landmark"
	"kpj/internal/obs"
)

// MetricsRegistry collects the library's counters, gauges, and histograms
// and renders them in Prometheus text format (WritePrometheus) or as a
// flat JSON object (WriteJSON). Registries are safe for concurrent use;
// metric updates are lock-free atomic operations. A nil registry — and
// every metric created from one — is valid and records nothing, so
// instrumented code needs no "is observability on" branches.
type MetricsRegistry = obs.Registry

// Spans records the phase timeline of a single query — lower-bound table
// builds, SPT construction, each bound iteration, subspace division,
// candidate resolution — for EXPLAIN ANALYZE-style inspection via
// Options.Spans. Timing is observational only: recording spans never
// changes the emitted path sequence. A nil *Spans records nothing at zero
// cost.
type Spans = obs.Spans

// Span is one recorded phase interval; see Spans.
type Span = obs.Span

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewSpans returns an empty per-query span recorder for Options.Spans.
func NewSpans() *Spans { return obs.NewSpans() }

// EnableMetrics registers the engine-wide counters (queries served, heap
// pops, edges relaxed, SPT nodes grown, pool scheduling, budget drain —
// the kpj_engine_* family) into reg and starts feeding them from every
// query processed by this process. Counters are aggregated from per-query
// Stats at query completion, so search inner loops gain no atomic
// operations. Call at most once per registry (metric names are unique);
// EnableMetrics(nil) turns collection off again.
func EnableMetrics(reg *MetricsRegistry) {
	if reg == nil {
		core.SetMetrics(nil)
		return
	}
	core.SetMetrics(core.NewEngineMetrics(reg))
}

// CacheStats is the full counter snapshot of a BoundsCache: cumulative
// hits, misses, and evictions, plus current occupancy and capacity.
type CacheStats = landmark.CacheStats

// FullStats reports every cumulative cache counter plus the current
// occupancy; unlike Stats it includes evictions.
func (c *BoundsCache) FullStats() CacheStats { return c.c.FullStats() }

// Instrument registers the cache's counters into reg as polled gauges
// (kpj_bounds_cache_*), read fresh at each exposition. Call at most once
// per (cache, registry) pair.
func (c *BoundsCache) Instrument(reg *MetricsRegistry) {
	reg.GaugeFunc("kpj_bounds_cache_hits_total", "bounds-cache lookups answered from cache",
		func() int64 { return c.c.FullStats().Hits })
	reg.GaugeFunc("kpj_bounds_cache_misses_total", "bounds-cache lookups that rebuilt a table",
		func() int64 { return c.c.FullStats().Misses })
	reg.GaugeFunc("kpj_bounds_cache_evictions_total", "bounds-cache tables displaced by LRU overflow or key collision",
		func() int64 { return c.c.FullStats().Evictions })
	reg.GaugeFunc("kpj_bounds_cache_entries", "bounds-cache tables currently resident",
		func() int64 { return int64(c.c.FullStats().Size) })
}

// observeQuery folds one completed query into the process-wide engine
// metrics (a no-op while EnableMetrics has not been called). err is the
// query's final error, after finishQuery wrapping: truncation sentinels
// classify as Truncated, anything else non-nil as a query error.
func observeQuery(st *Stats, budget int64, err error) {
	em := core.Metrics()
	if em == nil {
		return
	}
	// Classify by the wrapper, not an errors.Is allowlist: any
	// *TruncatedError (cancellation, budget, injected fault, recovered
	// panic) counts as truncated, everything else non-nil as a query error.
	_, truncated := Truncated(err)
	em.ObserveQuery(st, truncated, err != nil && !truncated, budget > 0)
}
