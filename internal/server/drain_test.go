package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"kpj/internal/leaktest"
)

// Readiness and draining: /readyz is the router-facing signal ("should
// this replica receive traffic"), distinct from /healthz liveness, and
// StartDraining flips it off ahead of graceful shutdown.

func TestReadyzReportsReadyWithFingerprint(t *testing.T) {
	defer leaktest.Check(t)()
	s, _ := testServer(t)
	rec, body := get(t, s, "/readyz")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d (%s)", rec.Code, body)
	}
	var out struct {
		Ready       bool   `json:"ready"`
		Fingerprint string `json:"fingerprint"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Ready || len(out.Fingerprint) != 16 {
		t.Fatalf("readyz = %+v, want ready with a 16-hex fingerprint", out)
	}
}

func TestReadyzWithoutIndexIsStillReady(t *testing.T) {
	// A server deliberately started index-less is fully functional (it
	// just computes bounds on the fly), so it must report ready.
	defer leaktest.Check(t)()
	_, g := testServer(t)
	noIx := New(g, nil)
	rec, body := get(t, noIx, "/readyz")
	if rec.Code != http.StatusOK {
		t.Fatalf("index-less readyz: status %d (%s)", rec.Code, body)
	}
}

func TestStartDrainingFlipsReadyzAndShedsQueries(t *testing.T) {
	defer leaktest.Check(t)()
	s, _ := testServer(t)
	if s.Draining() {
		t.Fatal("fresh server reports draining")
	}

	s.StartDraining()
	s.StartDraining() // idempotent
	if !s.Draining() {
		t.Fatal("Draining() false after StartDraining")
	}

	// /readyz: 503 with the reason and a Retry-After hint.
	rec, body := get(t, s, "/readyz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz: status %d (%s)", rec.Code, body)
	}
	var out struct {
		Ready  bool   `json:"ready"`
		Reason string `json:"reason"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Ready || out.Reason != "draining" {
		t.Fatalf("draining readyz body = %+v", out)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("draining readyz missing Retry-After")
	}

	// New queries and batches are shed with 503 + Retry-After.
	queryReq := httptest.NewRequest(http.MethodGet, "/query?source=0&category=hotel&k=2", nil)
	batchReq := httptest.NewRequest(http.MethodPost, "/batch",
		strings.NewReader(`[{"sources":[0],"category":"hotel","k":2}]`))
	for _, req := range []*http.Request{queryReq, batchReq} {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("%s while draining: status %d (%s)", req.URL.Path, rec.Code, rec.Body.Bytes())
		}
		if rec.Header().Get("Retry-After") == "" {
			t.Fatalf("%s while draining: missing Retry-After", req.URL.Path)
		}
	}

	// Liveness keeps answering 200 (the process is up, just not taking
	// traffic) and reports the drain so operators can see it.
	rec, body = get(t, s, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("draining healthz: status %d (%s)", rec.Code, body)
	}
	var health map[string]any
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatal(err)
	}
	if health["draining"] != true {
		t.Fatalf("draining healthz = %v, want draining:true", health)
	}
	// /categories (introspection, not query execution) also stays up.
	if rec, _ := get(t, s, "/categories"); rec.Code != http.StatusOK {
		t.Fatalf("draining categories: status %d", rec.Code)
	}
}
